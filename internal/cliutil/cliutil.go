// Package cliutil holds the flag and lifecycle conventions shared by the
// flow's command-line tools. Every CLI that drives a parallel kernel
// (drdesync, drlint, drequiv, experiments) registers the same -j flag
// through ParallelismVar, so the worker bound reads identically everywhere
// and the "0 means GOMAXPROCS, output identical at any value" contract is
// stated once. Seed flags keep their historical per-tool names and defaults
// (drequiv -seed 1, experiments -seed 5, drdesync -equiv-seed 1) but are
// registered through SeedVar so the reproducibility wording stays uniform.
package cliutil

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// ParallelismUsage is the shared help text of the -j flag.
const ParallelismUsage = "worker bound for the parallel kernels (0: all CPUs); results are identical at any value"

// ParallelismVar registers the shared -j flag on fs. The zero default defers
// to GOMAXPROCS inside the kernels (internal/par.Workers).
func ParallelismVar(fs *flag.FlagSet, p *int) {
	fs.IntVar(p, "j", 0, ParallelismUsage)
}

// SeedVar registers a PRNG seed flag under the tool's historical name and
// default, with a uniform reproducibility suffix on the usage string.
func SeedVar(fs *flag.FlagSet, p *int64, name string, def int64, usage string) {
	fs.Int64Var(p, name, def, fmt.Sprintf("%s (recorded so failures reproduce)", usage))
}

// DurationVar registers a duration flag (Go syntax: 30s, 2m) with a
// uniform "0 disables" suffix on the usage string — the wall-clock knobs
// (scenario deadlines, watchdog budgets) all read the same way.
func DurationVar(fs *flag.FlagSet, p *time.Duration, name string, def time.Duration, usage string) {
	fs.DurationVar(p, name, def, fmt.Sprintf("%s (0 disables)", usage))
}

// Context returns the root context of a CLI run: canceled on the first
// interrupt (Ctrl-C) or SIGTERM (a batch scheduler reclaiming the node),
// so the parallel kernels drain their workers and the tool exits through
// its normal error path — checkpoint journals keep a clean, resumable
// prefix — instead of being killed mid-write. A second signal falls back
// to the default behavior.
func Context() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// RunDrained is the shared drain lifecycle of every long-running tool
// (drdesync, drsweep, drserve): it runs fn under the Context signal context
// and classifies the outcome. interrupted is true when fn failed *because*
// the first Ctrl-C/SIGTERM canceled the context — the tool drained and
// stopped where it was told to — so mains can print a resume hint or exit
// quietly instead of reporting a spurious failure. A server that finishes
// its drain cleanly returns nil and is simply not interrupted; a second
// signal falls back to the runtime's default kill.
func RunDrained(fn func(ctx context.Context) error) (interrupted bool, err error) {
	ctx, cancel := Context()
	defer cancel()
	err = fn(ctx)
	interrupted = ctx.Err() != nil && err != nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
	return interrupted, err
}
