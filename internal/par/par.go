// Package par is the flow's parallel execution engine: bounded worker
// pools with context cancellation, error-group semantics and — the part
// the flow actually depends on — determinism. Every kernel built on this
// package (fault campaigns, the equiv frontier search, per-region STA
// extraction) must produce byte-identical reports at any worker count, so
// the primitives here separate *computing* results (any order, any
// goroutine) from *merging* them (always in task-index order, always on
// the caller's goroutine). Callers keep per-task results in index-addressed
// slots and fold them serially; nothing in this package ever exposes
// completion order.
package par

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a parallelism knob: n itself when positive, otherwise
// GOMAXPROCS. Every Parallelism option field in the repo goes through this,
// so "zero means default" is one rule, not one per package.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(ctx, i) for i in [0, n) on at most workers goroutines
// (resolved via Workers). Tasks are claimed from a shared counter, so
// completion order is arbitrary — fn must write any result it produces
// into an index-addressed slot.
//
// Error-group semantics: the first task error cancels the shared context,
// the remaining workers drain without claiming new tasks, and the error
// returned is deterministic — the lowest-index task error that is not the
// cancellation echo, so the same failing input reports the same failure at
// any worker count. A parent-context cancellation with no task error
// returns ctx.Err().
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// The serial path is the specification the parallel one must match:
		// same per-task ctx check, same first-error-wins selection.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := cctx.Err(); err != nil {
					return
				}
				if err := fn(cctx, i); err != nil {
					errs[i] = err
					cancel()
				}
			}
		}()
	}
	wg.Wait()

	// Deterministic selection: prefer the lowest-index error that is not
	// just the cancellation rippling through sibling tasks.
	var firstAny error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstAny == nil {
			firstAny = err
		}
		if !errors.Is(err, context.Canceled) {
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return firstAny
}

// Map runs fn over items on at most workers goroutines and returns the
// results in item order, regardless of completion order. On error the
// partial results are discarded and the deterministic ForEach error is
// returned.
func Map[T, R any](ctx context.Context, workers int, items []T, fn func(ctx context.Context, i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	err := ForEach(ctx, workers, len(items), func(ctx context.Context, i int) error {
		r, err := fn(ctx, i, items[i])
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Slabs partitions [0, n) into at most k contiguous half-open ranges of
// near-equal size, for batch kernels that want one task per slab instead of
// one per element. The ranges cover [0, n) exactly, in order.
func Slabs(n, k int) [][2]int {
	if n <= 0 {
		return nil
	}
	if k <= 0 {
		k = 1
	}
	if k > n {
		k = n
	}
	out := make([][2]int, 0, k)
	size, rem := n/k, n%k
	lo := 0
	for i := 0; i < k; i++ {
		hi := lo + size
		if i < rem {
			hi++
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}
