// Package stdcells provides the synthetic 90nm standard-cell libraries used
// throughout the reproduction in place of the proprietary STMicroelectronics
// CORE9 library. Two variants are built, mirroring §5 of the paper: a
// High-Speed (HS) library used for the DLX case study and a Low-Leakage (LL)
// library used for the ARM case study. Each cell carries area, per-corner
// leakage, switching energy and per-arc rise/fall delays at the best and
// worst PVT corners (the library has no typical corner, as in the paper).
//
// Absolute numbers are 90nm-plausible but synthetic; every experiment in the
// repository depends only on their ratios (e.g. latch area vs flip-flop
// area, worst/best corner spread), which are chosen to match the regimes the
// paper reports.
package stdcells

import (
	"fmt"

	"desync/internal/logic"
	"desync/internal/netlist"
)

// Variant selects the library flavour.
type Variant string

// Library variants, as in §5: High-Speed for DLX, Low-Leakage for ARM.
const (
	HighSpeed  Variant = "HS"
	LowLeakage Variant = "LL"
)

// CornerSpread: worst-case delay is this multiple of best-case delay for
// every cell. The paper's desynchronization argument (Fig 5.3) relies on all
// cells in a chip scaling together between corners; intra-die deviations are
// added per instance by internal/variability.
const CornerSpread = 2.5

// CornerGrid spans the inter-die operating range with n evenly spaced
// global delay scales from the best corner (1) to the worst (CornerSpread)
// inclusive — the PVT axis of a scenario sweep. n < 2 collapses to the
// nominal best corner.
func CornerGrid(n int) []float64 {
	if n < 2 {
		return []float64{1}
	}
	out := make([]float64, n)
	step := (CornerSpread - 1) / float64(n-1)
	for i := range out {
		out[i] = 1 + float64(i)*step
	}
	out[n-1] = CornerSpread // exact endpoint, no accumulation drift
	return out
}

// builder accumulates cells with variant-dependent scaling.
type builder struct {
	lib *netlist.Library
	// delayScale multiplies all delays; leakScale all leakage; energyScale
	// all switching energies.
	delayScale, leakScale, energyScale float64
}

// New builds a fresh library of the given variant. Libraries are cheap to
// construct; callers typically build one per flow run. New panics on an
// unknown variant; callers resolving a variant from user input should use
// NewChecked.
func New(v Variant) *netlist.Library {
	lib, err := NewChecked(v)
	if err != nil {
		panic(err.Error())
	}
	return lib
}

// NewChecked is New with the unknown-variant failure returned as an error.
func NewChecked(v Variant) (*netlist.Library, error) {
	b := &builder{lib: netlist.NewLibrary("CORE9GP-"+string(v), string(v))}
	switch v {
	case HighSpeed:
		b.delayScale, b.leakScale, b.energyScale = 1.0, 1.0, 1.0
	case LowLeakage:
		// Low-leakage transistors: slower, dramatically less leaky,
		// marginally cheaper per switch.
		b.delayScale, b.leakScale, b.energyScale = 1.6, 0.04, 0.9
	default:
		return nil, fmt.Errorf("stdcells: unknown variant %q", v)
	}
	b.build()
	return b.lib, nil
}

// d returns a Delay with the library's corner spread applied to a best-case
// value in nanoseconds.
func (b *builder) d(best float64) netlist.Delay {
	best *= b.delayScale
	return netlist.Delay{Best: best, Worst: best * CornerSpread}
}

// leak converts an area to a per-corner leakage power in µW (worst corner —
// high temperature — leaks more).
func (b *builder) leak(area float64) netlist.Delay {
	base := 0.002 * area * b.leakScale
	return netlist.Delay{Best: base, Worst: base * 4}
}

// energy converts an area to a per-transition dynamic energy in pJ.
func (b *builder) energy(area float64) float64 {
	return (0.0016*area + 0.0008) * b.energyScale
}

// comb registers a combinational cell whose output Z computes fn over the
// named inputs, with uniform input-to-output delay. riseSkew scales the rise
// delay relative to the fall delay (1.0 symmetric).
func (b *builder) comb(name string, area float64, inputs []string, fn string, base, riseSkew float64) *netlist.CellDef {
	c := &netlist.CellDef{
		Name:      name,
		Kind:      netlist.KindComb,
		Area:      area,
		Leakage:   b.leak(area),
		Energy:    b.energy(area),
		Functions: map[string]*logic.Expr{"Z": logic.MustParseExpr(fn)},
	}
	for _, in := range inputs {
		c.Pins = append(c.Pins, netlist.PinDef{Name: in, Dir: netlist.In, Cap: 0.002})
		c.Arcs = append(c.Arcs, netlist.TimingArc{
			From: in, To: "Z",
			Rise: b.d(base * riseSkew),
			Fall: b.d(base),
		})
	}
	c.Pins = append(c.Pins, netlist.PinDef{Name: "Z", Dir: netlist.Out})
	return b.lib.Add(c)
}

// seq registers a sequential cell (flip-flop or latch).
func (b *builder) seq(name string, kind netlist.CellKind, area float64, pins []netlist.PinDef, spec *netlist.SeqSpec, clk2q, setup, hold float64) *netlist.CellDef {
	c := &netlist.CellDef{
		Name:    name,
		Kind:    kind,
		Area:    area,
		Leakage: b.leak(area),
		Energy:  b.energy(area),
		Pins:    pins,
		Seq:     spec,
		Setup:   b.d(setup),
		Hold:    b.d(hold),
	}
	// Clock/enable to Q propagation arc; latches additionally have a D->Q
	// arc while transparent.
	c.Arcs = append(c.Arcs, netlist.TimingArc{
		From: spec.ClockPin, To: spec.Q, Rise: b.d(clk2q), Fall: b.d(clk2q),
	})
	if spec.QN != "" {
		c.Arcs = append(c.Arcs, netlist.TimingArc{
			From: spec.ClockPin, To: spec.QN, Rise: b.d(clk2q * 1.1), Fall: b.d(clk2q * 1.1),
		})
	}
	if kind == netlist.KindLatch {
		c.Arcs = append(c.Arcs, netlist.TimingArc{
			From: "D", To: spec.Q, Rise: b.d(clk2q * 0.8), Fall: b.d(clk2q * 0.8),
		})
	}
	if spec.AsyncSet != "" {
		c.Arcs = append(c.Arcs, netlist.TimingArc{
			From: spec.AsyncSet, To: spec.Q, Rise: b.d(clk2q), Fall: b.d(clk2q),
		})
	}
	if spec.AsyncReset != "" {
		c.Arcs = append(c.Arcs, netlist.TimingArc{
			From: spec.AsyncReset, To: spec.Q, Rise: b.d(clk2q), Fall: b.d(clk2q),
		})
	}
	return b.lib.Add(c)
}

// celem registers an n-input C-Muller element (Table 2.1 semantics).
func (b *builder) celem(name string, n int, area, base float64, invertLast bool) *netlist.CellDef {
	c := &netlist.CellDef{
		Name:    name,
		Kind:    netlist.KindCElem,
		Area:    area,
		Leakage: b.leak(area),
		Energy:  b.energy(area),
	}
	var set, reset []*logic.Expr
	for i := 0; i < n; i++ {
		pin := string(rune('A' + i))
		c.Pins = append(c.Pins, netlist.PinDef{Name: pin, Dir: netlist.In, Cap: 0.002})
		c.Arcs = append(c.Arcs, netlist.TimingArc{From: pin, To: "Q", Rise: b.d(base), Fall: b.d(base)})
		v := logic.Var(pin)
		if invertLast && i == n-1 {
			set = append(set, logic.Not(v))
			reset = append(reset, v)
		} else {
			set = append(set, v)
			reset = append(reset, logic.Not(v))
		}
	}
	c.Pins = append(c.Pins, netlist.PinDef{Name: "Q", Dir: netlist.Out, Class: netlist.ClassOutput})
	c.GC = &netlist.GCSpec{Set: logic.NewAnd(set...), Reset: logic.NewAnd(reset...), Q: "Q"}
	return b.lib.Add(c)
}

func pin(name string, dir netlist.PinDir, class netlist.PinClass) netlist.PinDef {
	return netlist.PinDef{Name: name, Dir: dir, Class: class, Cap: 0.002}
}

func (b *builder) build() {
	// ---- Tie cells ----
	for _, t := range []struct {
		name string
		v    string
	}{{"TIE0", "0"}, {"TIE1", "1"}} {
		c := &netlist.CellDef{
			Name: t.name, Kind: netlist.KindTie, Area: 1.8,
			Leakage:   b.leak(1.8),
			Functions: map[string]*logic.Expr{"Z": logic.MustParseExpr(t.v)},
			Pins:      []netlist.PinDef{{Name: "Z", Dir: netlist.Out}},
		}
		b.lib.Add(c)
	}

	// ---- Inverters and buffers, three drive strengths ----
	// Larger drives: faster (divide delay), bigger (multiply area).
	drives := []struct {
		suffix string
		dk, ak float64
	}{{"X1", 1.0, 1.0}, {"X2", 0.72, 1.35}, {"X4", 0.55, 1.9}}
	for _, dr := range drives {
		b.comb("INV"+dr.suffix, 2.8*dr.ak, []string{"A"}, "!A", 0.016*dr.dk, 1.0)
		b.comb("BUF"+dr.suffix, 3.7*dr.ak, []string{"A"}, "A", 0.028*dr.dk, 1.0)
	}
	// Clock buffers for low-skew trees (CTS).
	b.comb("CLKBUFX2", 5.5, []string{"A"}, "A", 0.024, 1.0)
	b.comb("CLKBUFX4", 7.4, []string{"A"}, "A", 0.019, 1.0)
	b.comb("CLKBUFX8", 11.1, []string{"A"}, "A", 0.015, 1.0)

	// ---- Basic gates ----
	b.comb("NAND2X1", 3.7, []string{"A", "B"}, "!(A&B)", 0.020, 1.05)
	b.comb("NAND3X1", 4.6, []string{"A", "B", "C"}, "!(A&B&C)", 0.026, 1.08)
	b.comb("NOR2X1", 3.7, []string{"A", "B"}, "!(A|B)", 0.022, 1.15)
	b.comb("NOR3X1", 4.6, []string{"A", "B", "C"}, "!(A|B|C)", 0.030, 1.2)
	for _, dr := range drives[:2] {
		b.comb("AND2"+dr.suffix, 4.6*dr.ak, []string{"A", "B"}, "A&B", 0.034*dr.dk, 1.05)
		b.comb("OR2"+dr.suffix, 4.6*dr.ak, []string{"A", "B"}, "A|B", 0.036*dr.dk, 1.1)
	}
	b.comb("AND3X1", 5.5, []string{"A", "B", "C"}, "A&B&C", 0.041, 1.05)
	b.comb("AND4X1", 6.5, []string{"A", "B", "C", "D"}, "A&B&C&D", 0.048, 1.05)
	b.comb("OR3X1", 5.5, []string{"A", "B", "C"}, "A|B|C", 0.043, 1.1)
	b.comb("XOR2X1", 7.4, []string{"A", "B"}, "A^B", 0.046, 1.0)
	b.comb("XNOR2X1", 7.4, []string{"A", "B"}, "!(A^B)", 0.046, 1.0)
	// MUX2: Z = A when S=0, B when S=1.
	b.comb("MUX2X1", 8.3, []string{"A", "B", "S"}, "(A&!S)|(B&S)", 0.044, 1.0)
	b.comb("AOI21X1", 5.5, []string{"A", "B", "C"}, "!((A&B)|C)", 0.028, 1.1)
	b.comb("OAI21X1", 5.5, []string{"A", "B", "C"}, "!((A|B)&C)", 0.028, 1.1)
	// AND with one inverted input: the workhorse of the flip-flop-to-latch
	// conversion rules (Fig 3.1) and of the latch controllers.
	b.comb("ANDN2X1", 4.6, []string{"A", "B"}, "A&!B", 0.034, 1.05)
	b.comb("ORN2X1", 4.6, []string{"A", "B"}, "A|!B", 0.036, 1.1)

	// ---- Flip-flops ----
	// Plain D flip-flop with Q and QN.
	b.seq("DFFQX1", netlist.KindFF, 18.4,
		[]netlist.PinDef{
			pin("D", netlist.In, netlist.ClassData),
			pin("CK", netlist.In, netlist.ClassClock),
			pin("Q", netlist.Out, netlist.ClassOutput),
			pin("QN", netlist.Out, netlist.ClassOutputN),
		},
		&netlist.SeqSpec{Next: logic.Var("D"), ClockPin: "CK", Q: "Q", QN: "QN"},
		0.110, 0.075, 0.012)
	// Scan flip-flop: SE selects SI over D.
	b.seq("SDFFQX1", netlist.KindFF, 23.9,
		[]netlist.PinDef{
			pin("D", netlist.In, netlist.ClassData),
			pin("SI", netlist.In, netlist.ClassScanIn),
			pin("SE", netlist.In, netlist.ClassScanEnable),
			pin("CK", netlist.In, netlist.ClassClock),
			pin("Q", netlist.Out, netlist.ClassOutput),
		},
		&netlist.SeqSpec{
			Next:     logic.MustParseExpr("(SE&SI)|(!SE&D)"),
			ClockPin: "CK", Q: "Q", ScanIn: "SI", ScanEnable: "SE",
		},
		0.120, 0.085, 0.012)
	// Asynchronous reset (active-low RN).
	b.seq("DFFRQX1", netlist.KindFF, 20.3,
		[]netlist.PinDef{
			pin("D", netlist.In, netlist.ClassData),
			pin("CK", netlist.In, netlist.ClassClock),
			pin("RN", netlist.In, netlist.ClassAsyncReset),
			pin("Q", netlist.Out, netlist.ClassOutput),
		},
		&netlist.SeqSpec{
			Next: logic.Var("D"), ClockPin: "CK", Q: "Q",
			AsyncReset: "RN", AsyncResetLow: true,
		},
		0.115, 0.080, 0.012)
	// Asynchronous set (active-low SN).
	b.seq("DFFSQX1", netlist.KindFF, 20.3,
		[]netlist.PinDef{
			pin("D", netlist.In, netlist.ClassData),
			pin("CK", netlist.In, netlist.ClassClock),
			pin("SN", netlist.In, netlist.ClassAsyncSet),
			pin("Q", netlist.Out, netlist.ClassOutput),
		},
		&netlist.SeqSpec{
			Next: logic.Var("D"), ClockPin: "CK", Q: "Q",
			AsyncSet: "SN", AsyncSetLow: true,
		},
		0.115, 0.080, 0.012)
	// Synchronous reset (active-high R sampled with D).
	b.seq("DFFSYNRX1", netlist.KindFF, 20.3,
		[]netlist.PinDef{
			pin("D", netlist.In, netlist.ClassData),
			pin("R", netlist.In, netlist.ClassData),
			pin("CK", netlist.In, netlist.ClassClock),
			pin("Q", netlist.Out, netlist.ClassOutput),
		},
		&netlist.SeqSpec{Next: logic.MustParseExpr("D&!R"), ClockPin: "CK", Q: "Q"},
		0.115, 0.080, 0.012)
	// Clock-gated flip-flop: captures only when EN is high at the edge.
	b.seq("DFFCGX1", netlist.KindFF, 21.2,
		[]netlist.PinDef{
			pin("D", netlist.In, netlist.ClassData),
			pin("EN", netlist.In, netlist.ClassData),
			pin("CK", netlist.In, netlist.ClassClock),
			pin("Q", netlist.Out, netlist.ClassOutput),
		},
		&netlist.SeqSpec{Next: logic.Var("D"), ClockPin: "CK", Q: "Q", ClockGate: "EN"},
		0.115, 0.080, 0.012)
	// Scan flip-flop with asynchronous reset, used by the ARM case study.
	b.seq("SDFFRQX1", netlist.KindFF, 25.8,
		[]netlist.PinDef{
			pin("D", netlist.In, netlist.ClassData),
			pin("SI", netlist.In, netlist.ClassScanIn),
			pin("SE", netlist.In, netlist.ClassScanEnable),
			pin("CK", netlist.In, netlist.ClassClock),
			pin("RN", netlist.In, netlist.ClassAsyncReset),
			pin("Q", netlist.Out, netlist.ClassOutput),
		},
		&netlist.SeqSpec{
			Next:     logic.MustParseExpr("(SE&SI)|(!SE&D)"),
			ClockPin: "CK", Q: "Q", ScanIn: "SI", ScanEnable: "SE",
			AsyncReset: "RN", AsyncResetLow: true,
		},
		0.125, 0.090, 0.012)

	// ---- Latches ----
	// Deliberately only the simplest possible latch is provided: all the
	// richer flip-flop behaviours must be rebuilt as composite latch modules
	// during library preparation, exactly the situation §3.1.2 describes.
	// Area ratio vs DFFQX1 is 0.59, so a master/slave pair costs ~1.18x a
	// flip-flop (the source of the sequential-area overhead in Table 5.1).
	b.seq("LATQX1", netlist.KindLatch, 10.8,
		[]netlist.PinDef{
			pin("D", netlist.In, netlist.ClassData),
			pin("G", netlist.In, netlist.ClassEnable),
			pin("Q", netlist.Out, netlist.ClassOutput),
		},
		&netlist.SeqSpec{Next: logic.Var("D"), ClockPin: "G", Q: "Q"},
		0.085, 0.050, 0.010)
	// Latch with asynchronous active-low reset, for reset-able pipelines.
	b.seq("LATRQX1", netlist.KindLatch, 12.0,
		[]netlist.PinDef{
			pin("D", netlist.In, netlist.ClassData),
			pin("G", netlist.In, netlist.ClassEnable),
			pin("RN", netlist.In, netlist.ClassAsyncReset),
			pin("Q", netlist.Out, netlist.ClassOutput),
		},
		&netlist.SeqSpec{
			Next: logic.Var("D"), ClockPin: "G", Q: "Q",
			AsyncReset: "RN", AsyncResetLow: true,
		},
		0.088, 0.050, 0.010)

	// ---- C-Muller elements ----
	// 2- and 3-input C elements as hard cells; wider rendezvous is built as
	// trees by internal/handshake (the paper synthesizes 2..10-input
	// C elements from Verilog, §3.1.5).
	b.celem("C2X1", 2, 10.2, 0.036, false)
	b.celem("C3X1", 3, 12.9, 0.044, false)
	// C2N: second input inverted; the building block of latch controllers.
	b.celem("C2NX1", 2, 10.2, 0.036, true)

	// ---- Controller cells ----
	// The 4-phase semi-decoupled latch controller (§3.1.3) maps onto three
	// complex gates: two resettable generalized-C elements (latch-enable and
	// request-out state) plus a plain ANDN2 for the acknowledge. These are
	// hand-mapped, hazard-free cells, as the paper requires — standard logic
	// synthesis cannot produce them (§3.1.3).
	//
	// CGM: latch-enable element resetting HIGH (masters are transparent at
	// reset). Q+ when ao=1 (the successor consumed the held datum; the
	// latch reopens to admit the next one even if it is already
	// requested); Q- when ri=1 and ao=0 (new datum valid, previous one
	// consumed: capture).
	b.gc("CGMX1", 13.0, 0.040,
		"A|R", "(!A&B)&!R")
	// CGS: the same function resetting LOW (slaves are opaque at reset).
	b.gc("CGSX1", 13.0, 0.040,
		"A&!R", "(!A&B)|R")
	// CRO: request-out C element, reset LOW. Q+ when g=0 and ao=0; Q- when
	// g=1 and ao=1. With a slave's reset state (g=0, ao=0) it fires as soon
	// as reset releases, announcing the registers' reset data.
	b.gc("CROX1", 13.0, 0.040,
		"(!A&!B)&!R", "(A&B)|R")
	// CB: the "opened since the last handshake" state bit (A=g, B=ri):
	// set while the latch is transparent, cleared once the input handshake
	// completes. It gates the input acknowledge so the controller never
	// acknowledges a datum it has not re-opened for and captured — without
	// it a lagging output acknowledge lets a token be skipped.
	b.gc2("CBX1", 10.2, 0.036, "A", "!A&!B")
	// AI: input acknowledge, Z = ri & !g & b.
	b.comb("ANDN3X1", 5.5, []string{"A", "B", "C"}, "A&!B&C", 0.038, 1.05)
}

// gc2 registers a two-input generalized-C cell (no reset pin).
func (b *builder) gc2(name string, area, base float64, set, reset string) *netlist.CellDef {
	c := &netlist.CellDef{
		Name:    name,
		Kind:    netlist.KindGC,
		Area:    area,
		Leakage: b.leak(area),
		Energy:  b.energy(area),
	}
	for _, in := range []string{"A", "B"} {
		c.Pins = append(c.Pins, netlist.PinDef{Name: in, Dir: netlist.In, Cap: 0.002})
		c.Arcs = append(c.Arcs, netlist.TimingArc{From: in, To: "Q", Rise: b.d(base), Fall: b.d(base)})
	}
	c.Pins = append(c.Pins, netlist.PinDef{Name: "Q", Dir: netlist.Out, Class: netlist.ClassOutput})
	c.GC = &netlist.GCSpec{
		Set:   logic.MustParseExpr(set),
		Reset: logic.MustParseExpr(reset),
		Q:     "Q",
	}
	return b.lib.Add(c)
}

// gc registers a resettable generalized-C controller cell with inputs A, B,
// reset R and output Q.
func (b *builder) gc(name string, area, base float64, set, reset string) *netlist.CellDef {
	c := &netlist.CellDef{
		Name:    name,
		Kind:    netlist.KindGC,
		Area:    area,
		Leakage: b.leak(area),
		Energy:  b.energy(area),
	}
	for _, in := range []string{"A", "B", "R"} {
		c.Pins = append(c.Pins, netlist.PinDef{Name: in, Dir: netlist.In, Cap: 0.002})
		c.Arcs = append(c.Arcs, netlist.TimingArc{From: in, To: "Q", Rise: b.d(base), Fall: b.d(base)})
	}
	c.Pins = append(c.Pins, netlist.PinDef{Name: "Q", Dir: netlist.Out, Class: netlist.ClassOutput})
	c.GC = &netlist.GCSpec{
		Set:   logic.MustParseExpr(set),
		Reset: logic.MustParseExpr(reset),
		Q:     "Q",
	}
	return b.lib.Add(c)
}

// Gatefile is the extracted library summary the desynchronization tool works
// from (§3.1.1): per-cell name, type and pin roles, plus flip-flop
// replacement rules filled in by internal/libprep.
type Gatefile struct {
	Lib   *netlist.Library
	Cells []GatefileEntry
}

// GatefileEntry is one row of the gatefile.
type GatefileEntry struct {
	Name string
	Kind netlist.CellKind
	Pins []netlist.PinDef
}

// ExtractGatefile builds the gatefile view of a library, as the paper's
// custom .lib-parsing script does.
func ExtractGatefile(lib *netlist.Library) *Gatefile {
	g := &Gatefile{Lib: lib}
	for _, name := range sortedCellNames(lib) {
		c := lib.Cells[name]
		g.Cells = append(g.Cells, GatefileEntry{Name: c.Name, Kind: c.Kind, Pins: c.Pins})
	}
	return g
}

func sortedCellNames(lib *netlist.Library) []string {
	names := make([]string, 0, len(lib.Cells))
	for n := range lib.Cells {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}
