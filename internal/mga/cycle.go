package mga

import (
	"fmt"
	"math"
	"sort"

	"desync/internal/lint"
)

// analyzeCycles computes the maximum cycle ratio delay(C)/tokens(C) over
// all directed cycles — the steady-state period of the handshake network
// — together with one cycle attaining it, exactly and without cycle
// enumeration:
//
//  1. Once liveness holds, the token-free subgraph is a DAG. Condense the
//     graph onto its token-carrying places: an edge p→q means q's source
//     transition is reachable from p's destination through token-free
//     places, weighted by p's delay plus the longest token-free path
//     between them (longest, because every transition is a rendezvous —
//     it fires when its last input arrives).
//  2. Every cycle of the condensed graph spends exactly one token per
//     edge, so the maximum cycle *ratio* of the original graph is the
//     maximum cycle *mean* of the condensed one — Karp's algorithm, with
//     the critical cycle recovered from the walk that attains the bound.
//
// Places with more than one initial token would make the condensation
// undercount tokens (raising the computed period — still a sound upper
// bound); the builder never creates them and checkBounds flags them.
func (g *Graph) analyzeCycles(r *Report) {
	// Longest token-free path between transitions, by DP over a reverse
	// topological order of the token-free DAG.
	n := len(g.Trans)
	order := make([]int, 0, n)
	state := make([]int, n) // 0 unvisited, 1 visiting, 2 done
	var visit func(v int)
	visit = func(v int) {
		state[v] = 1
		for _, pid := range g.out[v] {
			p := g.Places[pid]
			if p.Tokens > 0 || state[p.Dst] != 0 {
				continue
			}
			visit(p.Dst)
		}
		state[v] = 2
		order = append(order, v)
	}
	for v := 0; v < n; v++ {
		if state[v] == 0 {
			visit(v)
		}
	}
	// order is reverse-topological: successors first. long[a*n+b] is the
	// longest token-free delay from a to b; via[a*n+b] the first place on
	// that path, for cycle reconstruction. Flat n×n arrays: this runs on
	// the lint path of every drdesync invocation.
	neg := math.Inf(-1)
	long := make([]float64, n*n)
	via := make([]int, n*n)
	for i := range long {
		long[i] = neg
		via[i] = -1
	}
	for i := 0; i < n; i++ {
		long[i*n+i] = 0
	}
	for _, a := range order { // successors of a are already final
		for _, pid := range g.out[a] {
			p := g.Places[pid]
			if p.Tokens > 0 {
				continue
			}
			for b := 0; b < n; b++ {
				if long[p.Dst*n+b] == neg {
					continue
				}
				if d := p.Delay + long[p.Dst*n+b]; d > long[a*n+b] {
					long[a*n+b] = d
					via[a*n+b] = pid
				}
			}
		}
	}

	// Condensed graph over token places.
	var tok []int // place ids
	for _, p := range g.Places {
		if p.Tokens > 0 {
			tok = append(tok, p.ID)
		}
	}
	m := len(tok)
	if m == 0 {
		return // no tokens, no cycles (liveness would have failed on any cycle)
	}
	type cedge struct {
		to int
		w  float64
	}
	adj := make([][]cedge, m)
	for i, pid := range tok {
		p := g.Places[pid]
		for j, qid := range tok {
			q := g.Places[qid]
			if long[p.Dst*n+q.Src] == neg {
				continue
			}
			adj[i] = append(adj[i], cedge{j, p.Delay + long[p.Dst*n+q.Src]})
		}
	}

	// Karp: D[k][v] = maximum weight of a k-edge walk ending at v from a
	// virtual source (D[0] = 0 everywhere); parent pointers recover the
	// critical walk.
	D := make([]float64, (m+1)*m) // D[k*m+v], flat
	par := make([]int, (m+1)*m)   // parent condensed node at step k
	for i := range D {
		D[i] = neg
		par[i] = -1
	}
	for v := 0; v < m; v++ {
		D[v] = 0
	}
	for k := 1; k <= m; k++ {
		for u := 0; u < m; u++ {
			if D[(k-1)*m+u] == neg {
				continue
			}
			for _, e := range adj[u] {
				if d := D[(k-1)*m+u] + e.w; d > D[k*m+e.to] {
					D[k*m+e.to] = d
					par[k*m+e.to] = u
				}
			}
		}
	}
	best, bestV := neg, -1
	for v := 0; v < m; v++ {
		if D[m*m+v] == neg {
			continue
		}
		low := math.Inf(1)
		for k := 0; k < m; k++ {
			if D[k*m+v] == neg {
				continue
			}
			if mu := (D[m*m+v] - D[k*m+v]) / float64(m-k); mu < low {
				low = mu
			}
		}
		if low > best {
			best, bestV = low, v
		}
	}
	if bestV < 0 {
		return // acyclic control graph (single region with environment on both sides is still cyclic)
	}

	// Critical cycle: walk the parent chain of the maximal walk; some
	// condensed node repeats within m steps, and the repeated segment is a
	// cycle whose mean is the maximum (Karp's standard reconstruction).
	walk := make([]int, 0, m+1)
	v := bestV
	for k := m; k >= 0 && v >= 0; k-- {
		walk = append(walk, v)
		v = par[k*m+v]
	}
	// walk is reversed (end first); find a repeated node (the walk has at
	// most m+1 entries, so a linear scan beats a map).
	var cyc []int
	for i, u := range walk {
		for j := 0; j < i; j++ {
			if walk[j] == u {
				cyc = append(cyc, walk[j:i]...)
				break
			}
		}
		if len(cyc) > 0 {
			break
		}
	}
	if len(cyc) == 0 {
		cyc = []int{bestV}
	}
	// The walk was collected end-first: reverse to firing order.
	for i, j := 0, len(cyc)-1; i < j; i, j = i+1, j-1 {
		cyc[i], cyc[j] = cyc[j], cyc[i]
	}

	// Expand condensed nodes back to place names, inserting the token-free
	// path between consecutive token places, and recompute the exact
	// ratio of the extracted cycle (guards the reconstruction).
	var names []string
	total, tokens := 0.0, 0
	for i, ci := range cyc {
		p := g.Places[tok[ci]]
		names = append(names, p.Name)
		total += p.Delay
		tokens += p.Tokens
		next := g.Places[tok[cyc[(i+1)%len(cyc)]]]
		at := p.Dst
		for at != next.Src {
			pid := via[at*n+next.Src]
			if pid < 0 {
				break
			}
			q := g.Places[pid]
			names = append(names, q.Name)
			total += q.Delay
			at = q.Dst
		}
	}
	period := best
	if tokens > 0 {
		if ratio := total / float64(tokens); ratio > period-1e-9 {
			period = ratio // exact ratio of the named cycle
		}
	}
	r.PeriodNs = period
	r.CriticalCycle = names
	r.Bottleneck = bottleneckOf(g, names)
	r.Findings = append(r.Findings, lint.Finding{
		Rule: RuleCycle, Severity: lint.Info, Module: g.Design,
		Msg: fmt.Sprintf("critical handshake cycle %s: static period bound %.4f ns", joinNames(names), period),
	})
	g.perRegion(r)
}

// bottleneckOf names the channel contributing the largest delay on the
// critical cycle (falling back to the slowest place's name).
func bottleneckOf(g *Graph, names []string) string {
	bestD, best := -1.0, ""
	for _, nm := range names {
		for i := range g.Places {
			p := &g.Places[i]
			if p.Name != nm {
				continue
			}
			label := p.Channel
			if label == "" {
				label = p.Name
			}
			if p.Delay > bestD {
				bestD, best = p.Delay, label
			}
			break
		}
	}
	return best
}

// perRegion reports, for every region, its locally worst channel cycle —
// the request/acknowledge place pair with the highest ratio — as an
// advisory MG-PERF finding, so a designer sees which channel to retime
// even when it is not the global bottleneck.
func (g *Graph) perRegion(r *Report) {
	type pair struct {
		period  float64
		channel string
	}
	worst := map[int]pair{}
	for _, p := range g.Places {
		if p.Channel == "" {
			continue
		}
		v := g.Trans[p.Dst].Region
		if v < 0 {
			continue
		}
		// Close the channel cycle: the reverse place between the same two
		// transitions (acknowledge for a request, reopen for an env edge).
		total, tokens := p.Delay, p.Tokens
		back := -1
		for _, qid := range g.out[p.Dst] {
			if g.Places[qid].Dst == p.Src {
				if back < 0 || g.Places[qid].Delay > g.Places[back].Delay {
					back = qid
				}
			}
		}
		if back >= 0 {
			total += g.Places[back].Delay
			tokens += g.Places[back].Tokens
		}
		if tokens == 0 {
			continue // liveness already rejected this cycle
		}
		ratio := total / float64(tokens)
		if w, ok := worst[v]; !ok || ratio > w.period {
			worst[v] = pair{ratio, p.Channel}
		}
	}
	regions := make([]int, 0, len(worst))
	for v := range worst {
		regions = append(regions, v)
	}
	sort.Ints(regions)
	for _, v := range regions {
		w := worst[v]
		r.PerRegion = append(r.PerRegion, RegionPerf{Region: v, Channel: w.channel, PeriodNs: w.period})
		r.Findings = append(r.Findings, lint.Finding{
			Rule: RulePerf, Severity: lint.Info, Module: g.Design,
			Msg: fmt.Sprintf("region %d bottleneck channel %s: local cycle %.4f ns", v, w.channel, w.period),
		})
	}
}
