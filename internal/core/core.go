package core
