// NL-NAME fixture: the escaped net \alu/op simplifies to alu_op under the
// §3.2.1 name rewriting, colliding with the plain net of that name.
module bad_name (a, b, z1, z2);
  input a, b;
  output z1, z2;
  wire \alu/op ;
  wire alu_op;
  INVX1 u1 (.A(a), .Z(\alu/op ));
  INVX1 u2 (.A(b), .Z(alu_op));
  BUFX1 u3 (.A(\alu/op ), .Z(z1));
  BUFX1 u4 (.A(alu_op), .Z(z2));
endmodule
