// Package dft implements the Design-for-Testability step of the flow
// (§4.3): scan flip-flop substitution, scan-chain stitching, and
// random-pattern test-vector generation backed by a single-stuck-at fault
// simulator. The desynchronization step consumes the scan netlist and, per
// the flow-equivalence property, the very same vectors test the
// desynchronized chip (§2.1, §4.8).
package dft

import (
	"fmt"
	"math/rand"
	"sort"

	"desync/internal/logic"
	"desync/internal/netlist"
)

// scanMap names the scan-equivalent of each plain flip-flop in the
// libraries.
var scanMap = map[string]string{
	"DFFQX1":  "SDFFQX1",
	"DFFRQX1": "SDFFRQX1",
}

// InsertResult reports a scan-insertion run.
type InsertResult struct {
	Converted int
	ChainLen  int
}

// InsertScan converts every flip-flop to its scan version and stitches a
// single chain ordered by instance name. New ports: scan_in, scan_en,
// scan_out. Flip-flops whose QN output is used, or without a scan
// equivalent, are an error — the designer must restructure first, exactly
// as a DFT tool would insist.
func InsertScan(d *netlist.Design) (*InsertResult, error) {
	m := d.Top
	lib := d.Lib
	var ffs []*netlist.Inst
	for _, in := range m.Insts {
		if in.Cell != nil && in.Cell.Kind == netlist.KindFF {
			ffs = append(ffs, in)
		}
	}
	sort.Slice(ffs, func(i, j int) bool { return ffs[i].Name < ffs[j].Name })
	if len(ffs) == 0 {
		return nil, fmt.Errorf("dft: no flip-flops to scan")
	}

	scanIn := m.AddPort("scan_in", netlist.In).Net
	scanEn := m.AddPort("scan_en", netlist.In).Net
	scanOut := m.AddPort("scan_out", netlist.Out).Net

	prev := scanIn
	res := &InsertResult{}
	// Each conversion removes one flip-flop; batch the removals so the
	// Insts array compacts once after the chain is built.
	m.BeginBulk()
	defer m.EndBulk()
	for _, ff := range ffs {
		scanName, ok := scanMap[ff.Cell.Name]
		if !ok {
			return nil, fmt.Errorf("dft: no scan equivalent for %s (%s)", ff.Name, ff.Cell.Name)
		}
		if qn := ff.Cell.Seq.QN; qn != "" {
			if n := ff.Conn(qn); n != nil && len(n.Sinks) > 0 {
				return nil, fmt.Errorf("dft: %s uses QN, which the scan cell lacks", ff.Name)
			}
		}
		cell := lib.MustCell(scanName)
		conns := map[string]*netlist.Net{}
		for _, pc := range ff.Conns() {
			pin, n := pc.Pin, pc.Net
			conns[pin] = n
		}
		group := ff.Group
		name := ff.Name
		m.RemoveInst(ff)
		sc := m.AddInst(name, cell)
		sc.Group = group
		sc.Origin = "scan"
		for _, p := range cell.Pins {
			switch p.Name {
			case "SI":
				m.MustConnect(sc, "SI", prev)
			case "SE":
				m.MustConnect(sc, "SE", scanEn)
			default:
				n := conns[p.Name]
				if n == nil {
					if p.Dir == netlist.Out {
						continue
					}
					return nil, fmt.Errorf("dft: %s pin %s has no source", name, p.Name)
				}
				m.MustConnect(sc, p.Name, n)
			}
		}
		q := sc.Conn(cell.Seq.Q)
		if q == nil {
			q = m.AddNet(name + "_q_scan")
			m.MustConnect(sc, cell.Seq.Q, q)
		}
		prev = q
		res.Converted++
	}
	// Close the chain onto scan_out through a buffer (the last Q usually
	// also feeds functional logic).
	b := m.AddInst("scan_out_buf", lib.MustCell("BUFX1"))
	b.Origin = "scan"
	m.MustConnect(b, "A", prev)
	m.MustConnect(b, "Z", scanOut)
	res.ChainLen = res.Converted
	return res, nil
}

// Fault is a single stuck-at fault on a net.
type Fault struct {
	Net     string
	StuckAt logic.V
}

// CoverageReport summarizes a test-generation run.
type CoverageReport struct {
	Faults   int
	Detected int
	Vectors  int
}

// Coverage is the detected fraction.
func (c CoverageReport) Coverage() float64 {
	if c.Faults == 0 {
		return 0
	}
	return float64(c.Detected) / float64(c.Faults)
}

// GenerateVectors runs random-pattern combinational fault simulation over
// the scan design: scan flip-flop outputs and primary inputs are
// controllable, flip-flop data inputs and primary outputs observable (the
// standard full-scan assumption). It returns the achieved single-stuck-at
// coverage over all comb-cell output nets. Patterns are simulated 64 at a
// time bit-parallel; nVectors rounds up to a multiple of 64.
func GenerateVectors(d *netlist.Design, nVectors int, seed int64) (*CoverageReport, error) {
	cs, err := newConeSim(d.Top)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))

	// Fault list: stuck-at-0/1 on every comb output net.
	var faults []Fault
	for _, n := range d.Top.Nets {
		if n.Driver.Inst == nil || n.Driver.Inst.Cell == nil {
			continue
		}
		if n.Driver.Inst.Cell.Kind != netlist.KindComb {
			continue
		}
		faults = append(faults, Fault{n.Name, logic.L}, Fault{n.Name, logic.H})
	}
	detected := make([]bool, len(faults))

	words := (nVectors + 63) / 64
	rep := &CoverageReport{Faults: len(faults), Vectors: words * 64}
	for w := 0; w < words; w++ {
		pattern := make([]uint64, len(cs.inputs))
		for i := range pattern {
			pattern[i] = rng.Uint64()
		}
		good := cs.evalMask(pattern, -1, 0)
		for fi := range faults {
			if detected[fi] {
				continue
			}
			id := cs.idOf[d.Top.Net(faults[fi].Net)]
			var fv uint64
			if faults[fi].StuckAt == logic.H {
				fv = ^uint64(0)
			}
			bad := cs.evalMask(pattern, id, fv)
			for _, ob := range cs.observe {
				if good[ob] != bad[ob] {
					detected[fi] = true
					rep.Detected++
					break
				}
			}
		}
	}
	return rep, nil
}

// coneSim evaluates the combinational view of a scan design: levelized
// topological evaluation over nets.
type coneSim struct {
	m       *netlist.Module
	nets    []*netlist.Net
	idOf    map[*netlist.Net]int
	order   []*netlist.Inst // comb cells in topological order
	inputs  []int           // net ids of controllable points
	observe []int           // net ids of observable points
	ties    [][2]int        // (net id, constant value) for tie cells

	scratch, goodBuf []uint64
}

func newConeSim(m *netlist.Module) (*coneSim, error) {
	cs := &coneSim{m: m, idOf: map[*netlist.Net]int{}}
	for i, n := range m.Nets {
		cs.idOf[n] = i
	}
	cs.nets = m.Nets

	// Controllable: primary inputs and sequential outputs.
	for _, p := range m.Ports {
		if p.Dir == netlist.In {
			cs.inputs = append(cs.inputs, cs.idOf[p.Net])
		} else {
			cs.observe = append(cs.observe, cs.idOf[p.Net])
		}
	}
	indeg := map[*netlist.Inst]int{}
	var combs []*netlist.Inst
	for _, in := range m.Insts {
		if in.Cell == nil {
			return nil, fmt.Errorf("dft: not flat")
		}
		if in.Cell.IsSequential() {
			for _, out := range in.Cell.Outputs() {
				if n := in.Conn(out); n != nil {
					cs.inputs = append(cs.inputs, cs.idOf[n])
				}
			}
			for _, p := range in.Cell.Pins {
				if p.Dir == netlist.In && p.Class == netlist.ClassData {
					if n := in.Conn(p.Name); n != nil {
						cs.observe = append(cs.observe, cs.idOf[n])
					}
				}
			}
			continue
		}
		if in.Cell.Kind == netlist.KindComb {
			combs = append(combs, in)
			indeg[in] = 0
		}
		if in.Cell.Kind == netlist.KindTie {
			for out, fn := range in.Cell.Functions {
				if n := in.Conn(out); n != nil {
					v := 0
					if fn.Eval(nil) == logic.H {
						v = 1
					}
					cs.ties = append(cs.ties, [2]int{cs.idOf[n], v})
				}
			}
		}
	}
	// Kahn levelization over comb-comb edges.
	deps := map[*netlist.Inst][]*netlist.Inst{}
	for _, in := range combs {
		for _, pc := range in.Conns() {
			pin, n := pc.Pin, pc.Net
			if in.Cell.Pin(pin).Dir != netlist.In {
				continue
			}
			drv := n.Driver.Inst
			if drv != nil && drv.Cell != nil && drv.Cell.Kind == netlist.KindComb {
				deps[drv] = append(deps[drv], in)
				indeg[in]++
			}
		}
	}
	var queue []*netlist.Inst
	for _, in := range combs {
		if indeg[in] == 0 {
			queue = append(queue, in)
		}
	}
	for len(queue) > 0 {
		in := queue[0]
		queue = queue[1:]
		cs.order = append(cs.order, in)
		for _, s := range deps[in] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(cs.order) != len(combs) {
		return nil, fmt.Errorf("dft: combinational loop in scan design")
	}
	return cs, nil
}

// evalMask computes all net values bit-parallel over 64 patterns, with an
// optional stuck-at fault injected on net id faultID (-1 for none). The
// scratch buffers are reused across calls via the coneSim.
func (cs *coneSim) evalMask(pattern []uint64, faultID int, faultVal uint64) []uint64 {
	if cs.scratch == nil {
		cs.scratch = make([]uint64, len(cs.nets))
		cs.goodBuf = make([]uint64, len(cs.nets))
	}
	vals := cs.scratch
	if faultID < 0 {
		vals = cs.goodBuf
	}
	for i := range vals {
		vals[i] = 0
	}
	for i, id := range cs.inputs {
		vals[id] = pattern[i%len(pattern)]
	}
	for _, t := range cs.ties {
		if t[1] == 1 {
			vals[t[0]] = ^uint64(0)
		}
	}
	if faultID >= 0 {
		vals[faultID] = faultVal
	}
	env := map[string]uint64{}
	for _, in := range cs.order {
		for _, pc := range in.Conns() {
			pin, n := pc.Pin, pc.Net
			if in.Cell.Pin(pin).Dir == netlist.In {
				env[pin] = vals[cs.idOf[n]]
			}
		}
		for out, fn := range in.Cell.Functions {
			n := in.Conn(out)
			if n == nil {
				continue
			}
			id := cs.idOf[n]
			vals[id] = evalMaskExpr(fn, env)
			if id == faultID {
				vals[id] = faultVal
			}
		}
	}
	return vals
}

func evalMaskExpr(e *logic.Expr, env map[string]uint64) uint64 {
	switch e.Op {
	case logic.OpConst:
		if e.Val == logic.H {
			return ^uint64(0)
		}
		return 0
	case logic.OpVar:
		return env[e.Name]
	case logic.OpNot:
		return ^evalMaskExpr(e.Child[0], env)
	case logic.OpAnd:
		r := ^uint64(0)
		for _, c := range e.Child {
			r &= evalMaskExpr(c, env)
		}
		return r
	case logic.OpOr:
		var r uint64
		for _, c := range e.Child {
			r |= evalMaskExpr(c, env)
		}
		return r
	case logic.OpXor:
		var r uint64
		for _, c := range e.Child {
			r ^= evalMaskExpr(c, env)
		}
		return r
	}
	return 0
}
