// Package variability models the manufacturing and environmental variation
// the paper argues desynchronization tolerates (§1, §2.5, Fig 5.4):
// inter-die (global) variation that scales every cell of a chip together
// between the best and worst library corners, and intra-die (local)
// variation that perturbs individual instances. Fig 5.4's analysis assumes
// the inter-die population is normally distributed between the two extreme
// corners, "exactly like SSTA does"; Sample reproduces that assumption.
package variability

import (
	"math"
	"math/rand"

	"desync/internal/netlist"
	"desync/internal/stdcells"
)

// Chip is one sampled die.
type Chip struct {
	// Theta in [0,1]: 0 = best corner, 1 = worst corner.
	Theta float64
}

// Scale converts the die's position between corners into the delay
// multiplier to apply on top of best-corner delays (sim.Config.Scale with
// Corner: Best).
func (c Chip) Scale() float64 {
	return 1 + c.Theta*(stdcells.CornerSpread-1)
}

// Sample draws n dies with theta ~ Normal(0.5, sigma) truncated to [0,1] —
// the population of Fig 5.4. A sigma of 1/6 puts the corners at ±3σ.
func Sample(rng *rand.Rand, n int, sigma float64) []Chip {
	out := make([]Chip, n)
	for i := range out {
		for {
			t := 0.5 + rng.NormFloat64()*sigma
			if t >= 0 && t <= 1 {
				out[i] = Chip{Theta: t}
				break
			}
		}
	}
	return out
}

// ApplyIntraDie assigns every instance a local delay factor ~
// Normal(1, sigma), clamped to ±3σ, modelling within-die mismatch. Matched
// delay elements and the logic they track see *different* draws, which is
// precisely the margin the paper says delay elements must keep (§2.5).
func ApplyIntraDie(m *netlist.Module, sigma float64, rng *rand.Rand) {
	lo, hi := 1-3*sigma, 1+3*sigma
	for _, in := range m.Insts {
		f := 1 + rng.NormFloat64()*sigma
		in.DelayFactor = math.Max(lo, math.Min(hi, f))
	}
}

// IntraDieFactors is the non-mutating form of ApplyIntraDie: the same
// Normal(1, sigma) per-instance draw, clamped to ±3σ, returned as a factor
// map (sim.Config.DelayFactors) instead of written into the module. The
// draw multiplies each instance's baked-in DelayFactor (nominal when zero)
// because Config.DelayFactors *overrides* it — a chip map must not erase a
// sized delay element. Sweeps use it to evaluate many Monte Carlo chips
// against one shared read-only design: each chip is just a map,
// reproducible from its rng seed.
func IntraDieFactors(m *netlist.Module, sigma float64, rng *rand.Rand) map[string]float64 {
	lo, hi := 1-3*sigma, 1+3*sigma
	out := make(map[string]float64, len(m.Insts))
	for _, in := range m.Insts {
		base := in.DelayFactor
		if base == 0 {
			base = 1
		}
		f := 1 + rng.NormFloat64()*sigma
		out[in.Name] = base * math.Max(lo, math.Min(hi, f))
	}
	return out
}

// ResetIntraDie restores nominal per-instance delays.
func ResetIntraDie(m *netlist.Module) {
	for _, in := range m.Insts {
		in.DelayFactor = 1
	}
}

// WorstCaseScale is the multiplier corresponding to the worst corner.
func WorstCaseScale() float64 { return stdcells.CornerSpread }
