package lint

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// String renders one finding the way the text reporter prints it:
//
//	error DS-PAIR dlx inst=G3_delem/a1: request source is G1_sro, want G2_sro
func (f Finding) String() string {
	var b strings.Builder
	if f.Suppressed {
		b.WriteString("suppressed ")
	}
	fmt.Fprintf(&b, "%s %s %s", f.Severity, f.Rule, f.Module)
	if f.Inst != "" {
		fmt.Fprintf(&b, " inst=%s", f.Inst)
	}
	if f.Net != "" {
		fmt.Fprintf(&b, " net=%s", f.Net)
	}
	b.WriteString(": ")
	b.WriteString(f.Msg)
	return b.String()
}

// Text renders the whole report, one finding per line, followed by a
// one-line tally. An empty report renders as "clean".
func (r *Report) Text() string {
	if len(r.Findings) == 0 {
		return "clean\n"
	}
	var b strings.Builder
	counts := map[Severity]int{}
	suppressed := 0
	for _, f := range r.Findings {
		b.WriteString(f.String())
		b.WriteByte('\n')
		if f.Suppressed {
			suppressed++
			continue
		}
		counts[f.Severity]++
	}
	fmt.Fprintf(&b, "%d error(s), %d warning(s), %d note(s)",
		counts[Error], counts[Warning], counts[Info])
	if suppressed > 0 {
		fmt.Fprintf(&b, ", %d suppressed", suppressed)
	}
	b.WriteByte('\n')
	return b.String()
}

// jsonFinding is the wire form: severity as its string name.
type jsonFinding struct {
	Finding
	SeverityName string `json:"severity"`
}

// JSON renders the report as an indented object with a findings array and
// per-severity totals, for machine consumption (CI annotations, dashboards).
func (r *Report) JSON() ([]byte, error) {
	out := struct {
		Findings []jsonFinding `json:"findings"`
		Errors   int           `json:"errors"`
		Warnings int           `json:"warnings"`
		Notes    int           `json:"notes"`
	}{Findings: []jsonFinding{}}
	for _, f := range r.Findings {
		out.Findings = append(out.Findings, jsonFinding{Finding: f, SeverityName: f.Severity.String()})
	}
	out.Errors = r.Count(Error)
	out.Warnings = r.Count(Warning) - r.Count(Error)
	out.Notes = r.Count(Info) - r.Count(Warning)
	return json.MarshalIndent(out, "", "  ")
}

// Baseline is a set of finding keys accepted as known-clean: matching
// findings are still reported but marked suppressed and excluded from every
// count, so a legacy design can be gated on new findings only.
type Baseline map[string]bool

// ParseBaseline reads a baseline file: one Finding.Key per line
// (rule|module|inst|net), blank lines and #-comments ignored.
func ParseBaseline(rd io.Reader) (Baseline, error) {
	b := Baseline{}
	sc := bufio.NewScanner(rd)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		if strings.Count(s, "|") != 3 {
			return nil, fmt.Errorf("lint: baseline line %d: want rule|module|inst|net, got %q", line, s)
		}
		b[s] = true
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("lint: baseline: %w", err)
	}
	return b, nil
}

// ApplyBaseline marks findings whose key appears in the baseline as
// suppressed and returns how many were suppressed.
func (r *Report) ApplyBaseline(b Baseline) int {
	n := 0
	for i := range r.Findings {
		if b[r.Findings[i].Key()] {
			r.Findings[i].Suppressed = true
			n++
		}
	}
	return n
}

// BaselineText renders the keys of all unsuppressed findings in baseline
// file format (drlint -write-baseline), sorted and deduplicated.
func (r *Report) BaselineText() string {
	seen := map[string]bool{}
	var keys []string
	for _, f := range r.Findings {
		if f.Suppressed || seen[f.Key()] {
			continue
		}
		seen[f.Key()] = true
		keys = append(keys, f.Key())
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("# drlint baseline: rule|module|inst|net, one accepted finding per line\n")
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('\n')
	}
	return b.String()
}
