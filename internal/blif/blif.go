// Package blif exports flat gate-level modules in Berkeley Logic
// Interchange Format, the paper's secondary export format for the SIS tool
// (§3.2.7). Combinational cells become .names truth tables; flip-flops and
// latches become .latch statements.
package blif

import (
	"fmt"
	"sort"
	"strings"

	"desync/internal/logic"
	"desync/internal/netlist"
)

// Write renders the (flat) module as BLIF. Sequential cells map to .latch
// with the appropriate type: "re" for rising-edge flip-flops, "ah" for
// active-high latches. C elements and generalized C cells are modelled as
// .latch with a feedback .names implementing set/hold/reset, the standard
// SIS encoding for state-holding gates.
func Write(m *netlist.Module) (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, ".model %s\n", m.Name)

	var ins, outs []string
	for _, p := range m.Ports {
		switch p.Dir {
		case netlist.In:
			ins = append(ins, p.Net.Name)
		case netlist.Out:
			outs = append(outs, p.Net.Name)
		}
	}
	fmt.Fprintf(&sb, ".inputs %s\n", strings.Join(ins, " "))
	fmt.Fprintf(&sb, ".outputs %s\n", strings.Join(outs, " "))

	for _, in := range m.Insts {
		if in.Sub != nil {
			return "", fmt.Errorf("blif: module %s is not flat (instance %s)", m.Name, in.Name)
		}
		if err := writeInst(&sb, in); err != nil {
			return "", err
		}
	}
	sb.WriteString(".end\n")
	return sb.String(), nil
}

func writeInst(sb *strings.Builder, in *netlist.Inst) error {
	c := in.Cell
	switch c.Kind {
	case netlist.KindComb, netlist.KindTie:
		for _, out := range c.Outputs() {
			fn := c.Functions[out]
			if fn == nil {
				return fmt.Errorf("blif: cell %s output %s has no function", c.Name, out)
			}
			if err := writeNames(sb, in, fn, out); err != nil {
				return err
			}
		}
	case netlist.KindFF:
		d := in.Conn(nextStateNet(in))
		q := in.Conn(c.Seq.Q)
		ck := in.Conn(c.Seq.ClockPin)
		if d == nil || q == nil || ck == nil {
			return fmt.Errorf("blif: flip-flop %s incompletely connected", in.Name)
		}
		fmt.Fprintf(sb, ".latch %s %s re %s 3\n", d.Name, q.Name, ck.Name)
	case netlist.KindLatch:
		d := in.Conn(nextStateNet(in))
		q := in.Conn(c.Seq.Q)
		g := in.Conn(c.Seq.ClockPin)
		if d == nil || q == nil || g == nil {
			return fmt.Errorf("blif: latch %s incompletely connected", in.Name)
		}
		fmt.Fprintf(sb, ".latch %s %s ah %s 3\n", d.Name, q.Name, g.Name)
	case netlist.KindCElem, netlist.KindGC:
		// q_next = set | (q & !reset); expressed as a .names with the
		// output folded back through a zero-delay latch, SIS-style.
		qNet := in.Conn(c.GC.Q)
		if qNet == nil {
			return fmt.Errorf("blif: C element %s output unconnected", in.Name)
		}
		state := qNet.Name + "__state"
		next := logic.NewOr(c.GC.Set, logic.NewAnd(logic.Var("__q"), logic.Not(c.GC.Reset)))
		if err := writeNamesExpr(sb, in, next, state, map[string]string{"__q": qNet.Name}); err != nil {
			return err
		}
		fmt.Fprintf(sb, ".latch %s %s 3\n", state, qNet.Name)
	default:
		return fmt.Errorf("blif: unsupported cell kind %v for %s", c.Kind, in.Name)
	}
	return nil
}

// nextStateNet returns the data pin to use as the next-state input. BLIF has
// no side pins, so cells with composite next-state functions (scan, sync
// reset) keep only their primary D pin here; richer behaviour belongs to the
// Verilog view.
func nextStateNet(in *netlist.Inst) string {
	if in.Cell.Pin("D") != nil {
		return "D"
	}
	// Fall back to the first data input.
	for _, p := range in.Cell.Pins {
		if p.Dir == netlist.In && p.Class == netlist.ClassData {
			return p.Name
		}
	}
	return ""
}

func writeNames(sb *strings.Builder, in *netlist.Inst, fn *logic.Expr, outPin string) error {
	return writeNamesExpr(sb, in, fn, in.Conn(outPin).Name, nil)
}

// writeNamesExpr emits a .names truth table for fn, mapping variables
// through the instance's connections (with extra overriding the pin lookup).
func writeNamesExpr(sb *strings.Builder, in *netlist.Inst, fn *logic.Expr, outNet string, extra map[string]string) error {
	vars := fn.Vars()
	sort.Strings(vars)
	nets := make([]string, len(vars))
	for i, v := range vars {
		if extra != nil && extra[v] != "" {
			nets[i] = extra[v]
			continue
		}
		n := in.Conn(v)
		if n == nil {
			return fmt.Errorf("blif: %s: pin %s unconnected", in.Name, v)
		}
		nets[i] = n.Name
	}
	fmt.Fprintf(sb, ".names %s %s\n", strings.Join(nets, " "), outNet)
	if len(vars) == 0 {
		// Constant function.
		if fn.Eval(nil) == logic.H {
			sb.WriteString("1\n")
		}
		return nil
	}
	if len(vars) > 16 {
		return fmt.Errorf("blif: function with %d inputs too wide", len(vars))
	}
	for mask := 0; mask < 1<<len(vars); mask++ {
		env := map[string]logic.V{}
		for i, v := range vars {
			env[v] = logic.FromBool(mask>>i&1 == 1)
		}
		if fn.Eval(env) == logic.H {
			row := make([]byte, len(vars))
			for i := range vars {
				if mask>>i&1 == 1 {
					row[i] = '1'
				} else {
					row[i] = '0'
				}
			}
			fmt.Fprintf(sb, "%s 1\n", row)
		}
	}
	return nil
}
