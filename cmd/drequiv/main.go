// Command drequiv is the formal flow-equivalence engine: it compiles a
// desynchronized control network into a token-marking model and
// model-checks deadlock-freedom, master/slave phase safety and flow
// equivalence against the synchronous schedule, reporting violations as
// concrete counterexample traces.
//
// Usage:
//
//	drequiv -in design.v [-top name] [-lib HS|LL] [-max-states N] \
//	        [-no-reduce] [-xval N] [-seed S] [-j N] [-dump-ce trace.json] [-json]
//	drequiv -gen dlx|arm|fir [...]
//	drequiv -gen pipeline:depth=32,width=64,regions=100 [...]
//	drequiv -gen dlx -replay trace.json
//	drequiv -gen dlx -static [-json]
//
// -gen runs a built-in flow and verifies its output, so CI can gate the
// example designs without carrying netlist artifacts: dlx, arm and fir run
// their hand-tuned case-study flows, and any other designs.ParseSpec spec
// (pipeline, riscv, des) runs the generic desynchronization flow. -xval N
// cross-validates the model against N randomized simulator traces (seeded
// with -seed, recorded in the JSON report, so failures reproduce). -j bounds
// the exploration and cross-validation workers (0: all CPUs); the report —
// state counts, counterexample traces, truncation — is identical at any
// value, so -max-states and -no-reduce compose with it unchanged. -dump-ce
// writes the counterexample of a violated property as a JSON trace;
// -replay feeds such a trace back through the gate-level simulator to
// confirm the interleaving dynamically.
//
// -static replaces the exhaustive exploration with the polynomial-time
// marked-graph analysis of internal/mga: structural liveness and safety
// verdicts plus the static period bound and critical handshake cycle. Its
// report is deterministic (byte-identical across runs and -j values) and
// reaches designs whose state space no marking budget covers.
//
// Exit codes: 0 all properties proved (and replay confirmed), 1 a property
// was disproved (or replay did not confirm), 2 usage or input errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"desync/internal/cliutil"
	"desync/internal/ctrlnet"
	"desync/internal/designs"
	"desync/internal/equiv"
	"desync/internal/expt"
	"desync/internal/mga"
	"desync/internal/netlist"
	"desync/internal/stdcells"
	"desync/internal/verilog"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type equivOpts struct {
	in, gen, top, libVariant string
	maxStates                int
	noReduce, jsonOut        bool
	static                   bool
	xval                     int
	seed                     int64
	parallelism              int
	dumpCE, replay           string
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("drequiv", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o equivOpts
	fs.StringVar(&o.in, "in", "", "input desynchronized gate-level Verilog netlist")
	fs.StringVar(&o.gen, "gen", "", "verify a built-in flow instead of a file: dlx, arm, fir, or a spec like pipeline:depth=8,width=32")
	fs.StringVar(&o.top, "top", "", "top module (default: auto-detect)")
	fs.StringVar(&o.libVariant, "lib", "HS", "technology library variant: HS or LL")
	fs.IntVar(&o.maxStates, "max-states", 0, "marking budget (0: engine default); truncation is reported explicitly")
	fs.BoolVar(&o.noReduce, "no-reduce", false, "disable the partial-order reduction (full interleaving)")
	fs.BoolVar(&o.static, "static", false, "run the polynomial-time marked-graph analysis instead of the exhaustive exploration")
	fs.IntVar(&o.xval, "xval", 0, "cross-validate against N randomized simulator traces")
	cliutil.SeedVar(fs, &o.seed, "seed", 1, "PRNG seed for -xval trace generation")
	cliutil.ParallelismVar(fs, &o.parallelism)
	fs.BoolVar(&o.jsonOut, "json", false, "emit the report as JSON")
	fs.StringVar(&o.dumpCE, "dump-ce", "", "write the counterexample trace of a violated property to this JSON file")
	fs.StringVar(&o.replay, "replay", "", "replay a dumped counterexample trace through the simulator and confirm it")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (o.in == "") == (o.gen == "") {
		fmt.Fprintln(stderr, "drequiv: exactly one of -in or -gen is required")
		fs.Usage()
		return 2
	}
	ctx, cancel := cliutil.Context()
	defer cancel()
	code, err := equivRun(ctx, o, stdout)
	if err != nil {
		fmt.Fprintln(stderr, "drequiv:", err)
		return 2
	}
	return code
}

func equivRun(ctx context.Context, o equivOpts, stdout io.Writer) (int, error) {
	mod, err := loadModule(o)
	if err != nil {
		return 0, err
	}
	if o.static {
		return staticRun(o, mod, stdout)
	}
	// One control-network derivation serves the whole run: the model
	// extraction here, and (via the memoized cache) anything downstream
	// that derives again on the same module.
	m, err := equiv.FromNetwork(mod, ctrlnet.Derive(mod))
	if err != nil {
		return 0, err
	}

	if o.replay != "" {
		return replayRun(o, mod, m, stdout)
	}

	res, err := m.Explore(ctx, equiv.ExploreOptions{
		MaxStates: o.maxStates, NoReduce: o.noReduce, Parallelism: o.parallelism,
	})
	if err != nil {
		return 0, err
	}
	if o.xval > 0 && res.Violation == nil {
		xv, err := m.CrossValidate(ctx, mod, equiv.XValConfig{
			Traces: o.xval, Seed: o.seed, Parallelism: o.parallelism,
		})
		if err != nil {
			return 0, err
		}
		res.XVal = xv
	}
	res.Model = &equiv.ModelInfo{Findings: m.Findings}

	if o.dumpCE != "" {
		tr := res.CounterexampleTrace()
		if tr == nil && res.XVal != nil && res.XVal.Divergence != nil {
			d := res.XVal.Divergence
			tr = &equiv.Trace{
				Design: res.Design, Rule: equiv.RuleXVal,
				Msg:    fmt.Sprintf("simulated trace %d diverged on %s at t=%.3f ns", d.TraceIndex, d.Net, d.Time),
				Events: d.Observed, Marking: d.Marking, Seed: res.XVal.Seed,
			}
		}
		if tr == nil {
			fmt.Fprintln(stdout, "drequiv: no counterexample to dump (all properties proved)")
		} else if err := writeTraceFile(o.dumpCE, tr); err != nil {
			return 0, err
		}
	}

	if o.jsonOut {
		if err := res.WriteJSON(stdout); err != nil {
			return 0, err
		}
	} else {
		res.WriteText(stdout)
	}
	if !res.Clean() {
		return 1, nil
	}
	return 0, nil
}

// staticRun is the -static mode: the marked-graph analysis in place of
// the BFS. Exit 1 on any error-severity finding, mirroring the explore
// path's disproved-property exit.
func staticRun(o equivOpts, mod *netlist.Module, stdout io.Writer) (int, error) {
	rep, err := mga.Analyze(mod, ctrlnet.Derive(mod), mga.Options{})
	if err != nil {
		return 0, err
	}
	if o.jsonOut {
		if err := rep.WriteJSON(stdout); err != nil {
			return 0, err
		}
	} else {
		rep.WriteText(stdout)
		for _, f := range rep.ModelFindings {
			fmt.Fprintf(stdout, "%s\n", f.String())
		}
	}
	if rep.LintReport(rep.ModelFindings).Errors() > 0 {
		return 1, nil
	}
	return 0, nil
}

func replayRun(o equivOpts, mod *netlist.Module, m *equiv.Model, stdout io.Writer) (int, error) {
	f, err := os.Open(o.replay)
	if err != nil {
		return 0, err
	}
	tr, err := equiv.ReadTrace(f)
	f.Close()
	if err != nil {
		return 0, err
	}
	rep, err := equiv.Replay(mod, m, tr, equiv.ReplayConfig{})
	if err != nil {
		return 0, err
	}
	if o.jsonOut {
		out, err := jsonIndent(rep)
		if err != nil {
			return 0, err
		}
		fmt.Fprintln(stdout, out)
	} else {
		verdict := "NOT confirmed"
		if rep.Confirmed {
			verdict = "confirmed"
		}
		fmt.Fprintf(stdout, "replay: %s counterexample %s: %s\n", tr.Rule, verdict, rep.Detail)
		fmt.Fprintf(stdout, "  %d events forced, %d enable transitions after release\n", rep.Steps, rep.PostEvents)
		for _, d := range rep.Diagnostics {
			fmt.Fprintf(stdout, "  watchdog: %s\n", d)
		}
	}
	if !rep.Confirmed {
		return 1, nil
	}
	return 0, nil
}

func writeTraceFile(path string, tr *equiv.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := equiv.WriteTrace(f, tr); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// loadModule reads the input netlist or runs one of the built-in
// case-study flows and returns the desynchronized top module.
func loadModule(o equivOpts) (*netlist.Module, error) {
	if o.gen != "" {
		switch o.gen {
		case "dlx":
			f, err := expt.RunDLXFlow(expt.FlowConfig{Parallelism: o.parallelism})
			if err != nil {
				return nil, err
			}
			return f.Desync.Top, nil
		case "arm":
			f, err := expt.RunARMFlow(false)
			if err != nil {
				return nil, err
			}
			return f.Desync.Top, nil
		case "fir":
			f, err := expt.RunFIRFlow(expt.FlowConfig{Parallelism: o.parallelism})
			if err != nil {
				return nil, err
			}
			return f.Desync.Top, nil
		}
		// Anything else is a parametric generator spec: desynchronize it
		// through the generic flow and verify that output.
		if !designs.ValidSpec(o.gen) {
			return nil, fmt.Errorf("unknown -gen design %q (want %s, with pipeline key=value params)", o.gen, strings.Join(designs.SpecNames(), "|"))
		}
		f, err := expt.RunGenFlow(o.gen, expt.FlowConfig{Parallelism: o.parallelism})
		if err != nil {
			return nil, err
		}
		return f.Desync.Top, nil
	}
	lib := stdcells.New(stdcells.Variant(o.libVariant))
	src, err := os.ReadFile(o.in)
	if err != nil {
		return nil, err
	}
	d, err := verilog.Read(string(src), lib, o.top)
	if err != nil {
		return nil, err
	}
	return d.Top, nil
}

func jsonIndent(v any) (string, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b), nil
}
