package equiv

import (
	"context"
	"fmt"
	"sort"

	"desync/internal/par"
)

// genCap bounds how far the generation counters may spread after
// normalization. Correct semi-decoupled pipelines keep neighbouring
// regions within a couple of generations; a counter running this far ahead
// means the schedule has diverged (a token leaked or duplicated).
const genCap = 24

// state is one marking: a packed signal bitvector followed by one byte per
// generation counter (stored relative to the global minimum, which fire()
// re-normalizes, keeping the reachable space finite).
type state []byte

func (m *Model) sigBytes() int { return (len(m.sigs) + 7) / 8 }

func (st state) bit(i int) bool { return st[i>>3]&(1<<(i&7)) != 0 }
func (st state) setBit(i int, v bool) {
	if v {
		st[i>>3] |= 1 << (i & 7)
	} else {
		st[i>>3] &^= 1 << (i & 7)
	}
}

func (m *Model) ctr(st state, c int) int   { return int(st[m.sigBytes()+c]) }
func (m *Model) setCtr(st state, c, v int) { st[m.sigBytes()+c] = byte(v) }
func (m *Model) op(st state, o operand) bool {
	if o.sig < 0 {
		return o.stuck
	}
	return st.bit(o.sig)
}

// initial builds the post-reset marking: enables at their cell's reset
// phase, b bits tracking their enable, every request/acknowledge/join low,
// all counters zero. A healthy network is booted by the opaque slaves,
// whose request-outs are excited here (announcing the reset datum,
// generation 0).
func (m *Model) initial() state {
	st := make(state, m.sigBytes()+m.nCtr)
	for i := range m.sigs {
		st.setBit(i, m.sigs[i].init)
	}
	return st
}

// target computes the value signal i is excited towards; a signal is
// excited when target differs from its current value. These are the exact
// set/reset equations of the library's controller cells (CGMX1/CGSX1,
// CROX1, CBX1, ANDN3X1) with the reset pin released.
func (m *Model) target(st state, i int) bool {
	s := &m.sigs[i]
	cur := st.bit(i)
	switch s.kind {
	case kindG: // set: ao; reset: !ao & ri
		if m.op(st, s.a) {
			return true
		}
		if m.op(st, s.b) {
			return false
		}
		return cur
	case kindRO: // set: !g & !ao; reset: g & ao
		g, ao := m.op(st, s.a), m.op(st, s.b)
		if !g && !ao {
			return true
		}
		if g && ao {
			return false
		}
		return cur
	case kindB: // set: g; reset: !g & !ri
		g, ri := m.op(st, s.a), m.op(st, s.b)
		if g {
			return true
		}
		if !ri {
			return false
		}
		return cur
	case kindAI: // combinational: ri & !g & b
		return m.op(st, s.a) && !m.op(st, s.b) && m.op(st, s.c)
	case kindDelay: // matched delay chain: follows its source
		return m.op(st, s.a)
	case kindJoin: // C-Muller rendezvous
		all1, all0 := true, true
		for _, t := range s.terms {
			if m.op(st, t) {
				all0 = false
			} else {
				all1 = false
			}
		}
		if all1 {
			return true
		}
		if all0 {
			return false
		}
		return cur
	case kindEnvSrc: // eager producer: request whenever unacknowledged
		return !m.op(st, s.a)
	case kindEnvSink: // eager consumer: mirror the request-out
		return m.op(st, s.a)
	}
	return cur
}

func (m *Model) excited(st state) []int {
	var out []int
	for i := range m.sigs {
		if m.target(st, i) != st.bit(i) {
			out = append(out, i)
		}
	}
	return out
}

// fire applies one transition to a copy of st, running the schedule checks
// that define safety and flow equivalence. The returned violation, if any,
// is enabled exactly at st (the enabling marking).
func (m *Model) fire(st state, i int) (state, *Violation) {
	s := &m.sigs[i]
	v := !st.bit(i)
	ns := make(state, len(st))
	copy(ns, st)
	ns.setBit(i, v)
	r := s.region

	switch s.kind {
	case kindG:
		if !v { // enable falls: the latch captures
			if s.master {
				for _, ref := range m.preds[r] {
					want := m.ctr(st, m.mCtr[r])
					got, viol := m.genOf(st, ref, map[int]bool{})
					if viol != nil {
						return nil, viol
					}
					if ref.kind == genEnv {
						got = m.ctr(st, m.envCtr[ref.sig]) - 1
					}
					if got != want {
						return nil, &Violation{
							Rule: RuleFlow, Sig: s.name, Region: r,
							Msg: fmt.Sprintf("region %d master capture %d latches generation %d from %s (synchronous schedule requires %d)",
								r, want+1, got, m.refName(ref), want),
						}
					}
				}
				m.setCtr(ns, m.mCtr[r], m.ctr(st, m.mCtr[r])+1)
			} else {
				want := m.ctr(st, m.sCtr[r]) + 1
				got, viol := m.masterOut(st, r, map[int]bool{})
				if viol != nil {
					return nil, viol
				}
				if got != want {
					return nil, &Violation{
						Rule: RuleFlow, Sig: s.name, Region: r,
						Msg: fmt.Sprintf("region %d slave capture %d latches master generation %d (synchronous schedule requires %d)",
							r, want, got, want),
					}
				}
				m.setCtr(ns, m.sCtr[r], want)
			}
		} else { // enable rises: the latch reopens — overwrite guards
			if s.master {
				if mg, sg := m.ctr(st, m.mCtr[r]), m.ctr(st, m.sCtr[r]); mg != sg {
					return nil, &Violation{
						Rule: RuleSafety, Sig: s.name, Region: r,
						Msg: fmt.Sprintf("region %d master reopens while its slave holds generation %d of %d (unconsumed datum overwritten)",
							r, sg, mg),
					}
				}
			} else {
				sg := m.ctr(st, m.sCtr[r])
				for _, ref := range m.consumers[r] {
					var got int
					switch ref.kind {
					case genCons:
						got = m.ctr(st, m.mCtr[ref.region])
					case genEnvSink:
						got = m.ctr(st, m.envCtr[ref.sig])
					default:
						continue
					}
					if got != sg+1 {
						return nil, &Violation{
							Rule: RuleSafety, Sig: s.name, Region: r,
							Msg: fmt.Sprintf("region %d slave reopens before %s consumed generation %d (overwrite of a live datum)",
								r, m.refName(ref), sg),
						}
					}
				}
			}
		}
	case kindEnvSrc:
		if v { // next input presented: the previous one must be consumed
			c := m.envCtr[i]
			if got := m.ctr(st, c); got != m.ctr(st, m.mCtr[r]) {
				return nil, &Violation{
					Rule: RuleFlow, Sig: s.name, Region: r,
					Msg: fmt.Sprintf("environment presents input %d before region %d consumed input %d",
						got+1, r, got),
				}
			}
			m.setCtr(ns, c, m.ctr(st, c)+1)
		}
	case kindEnvSink:
		if v { // output consumed: must match the production schedule
			c := m.envCtr[i]
			sg := m.ctr(st, m.sCtr[r])
			if got := m.ctr(st, c); got != sg {
				return nil, &Violation{
					Rule: RuleFlow, Sig: s.name, Region: r,
					Msg: fmt.Sprintf("environment consumes output %d but region %d has produced %d",
						got+1, r, sg),
				}
			}
			m.setCtr(ns, c, m.ctr(st, c)+1)
		}
	}

	if viol := m.normalize(ns); viol != nil {
		viol.Sig = s.name
		return nil, viol
	}
	return ns, nil
}

// normalize rebases all generation counters on their minimum and bounds
// the spread: correct networks stay within a few generations of each
// other, so exceeding genCap is itself a flow violation (a region running
// unboundedly ahead of the schedule).
func (m *Model) normalize(st state) *Violation {
	if m.nCtr == 0 {
		return nil
	}
	min := m.ctr(st, 0)
	for c := 1; c < m.nCtr; c++ {
		if v := m.ctr(st, c); v < min {
			min = v
		}
	}
	if min > 0 {
		for c := 0; c < m.nCtr; c++ {
			m.setCtr(st, c, m.ctr(st, c)-min)
		}
	}
	for c := 0; c < m.nCtr; c++ {
		if m.ctr(st, c) > genCap {
			return &Violation{
				Rule: RuleFlow,
				Msg:  fmt.Sprintf("generation divergence: a schedule counter ran %d generations ahead of the slowest region", genCap),
			}
		}
	}
	return nil
}

// genOf resolves the generation a master capture would latch from one
// source: a closed pred slave offers its captured generation; a
// transparent one exposes its own master, recursively. A cycle of
// transparent latches is a data race (nothing holds the datum).
func (m *Model) genOf(st state, ref genRef, visiting map[int]bool) (int, *Violation) {
	switch ref.kind {
	case genSlave:
		return m.slaveOut(st, ref.region, visiting)
	case genMaster:
		return m.masterOut(st, ref.region, visiting)
	case genEnv:
		return m.ctr(st, m.envCtr[ref.sig]), nil
	}
	return 0, nil
}

func (m *Model) slaveOut(st state, r int, visiting map[int]bool) (int, *Violation) {
	if idx := m.sg[r]; idx >= 0 && st.bit(idx) {
		return m.masterOut(st, r, visiting)
	}
	return m.ctr(st, m.sCtr[r]), nil
}

func (m *Model) masterOut(st state, r int, visiting map[int]bool) (int, *Violation) {
	if idx := m.mg[r]; idx < 0 || !st.bit(idx) {
		return m.ctr(st, m.mCtr[r]), nil
	}
	if visiting[r] {
		return 0, &Violation{
			Rule: RuleSafety, Region: r,
			Msg: fmt.Sprintf("transparent-latch cycle through region %d: no latch holds the datum (data race)", r),
		}
	}
	visiting[r] = true
	defer delete(visiting, r)
	gen, have := 0, false
	for _, ref := range m.preds[r] {
		var g int
		var viol *Violation
		switch ref.kind {
		case genEnv:
			g = m.ctr(st, m.envCtr[ref.sig]) - 1
		default:
			g, viol = m.genOf(st, ref, visiting)
			if viol != nil {
				return 0, viol
			}
		}
		if have && g != gen {
			return 0, &Violation{
				Rule: RuleSafety, Region: r,
				Msg: fmt.Sprintf("region %d transparent master mixes generations %d and %d from its inputs", r, gen, g),
			}
		}
		gen, have = g, true
	}
	return gen + 1, nil
}

func (m *Model) refName(ref genRef) string {
	switch ref.kind {
	case genSlave:
		return fmt.Sprintf("region %d slave", ref.region)
	case genMaster:
		return fmt.Sprintf("region %d master", ref.region)
	case genCons:
		return fmt.Sprintf("region %d", ref.region)
	case genEnv, genEnvSink:
		if ref.sig >= 0 && ref.sig < len(m.sigs) {
			return "environment channel " + m.sigs[ref.sig].name
		}
	}
	return "environment"
}

// ExploreOptions bound and tune the state-space search.
type ExploreOptions struct {
	MaxStates int  // marking budget; 0 means DefaultMaxStates
	NoReduce  bool // disable the partial-order reduction (full interleaving)
	// Parallelism bounds the frontier workers; 0 means GOMAXPROCS. The
	// result is byte-identical at any value — see Explore's determinism
	// argument.
	Parallelism int
}

// DefaultMaxStates is the marking budget when none is given.
const DefaultMaxStates = 500_000

// visitEntry is the striped visited-set record of one discovered marking:
// the parent edge for counterexample reconstruction, plus the occurrence
// priority that decides which of several concurrent discoveries "won" —
// the one the serial search would have kept.
type visitEntry struct {
	prio uint64
	prev string
	sig  int32
}

// prioShift packs an occurrence priority as (popIndex+1) << prioShift |
// fireListPosition: strictly increasing along the serial pop/fire order,
// unique per occurrence, and never zero (zero is the root's). 20 bits for
// the fire-list position is far above any model's signal count.
const prioShift = 20

// Explore runs the breadth-first reachability analysis and returns the
// verification result. The search stops at the first property violation
// (BFS order makes its counterexample trace minimal in transition count)
// or when the marking budget is exhausted, which is reported explicitly as
// truncation, never silently as a proof. The only error is ctx
// cancellation, checked once per frontier level.
//
// The search is level-synchronous and deterministic at any worker count:
// the frontier (exactly the serial queue at a level boundary) is processed
// by parallel workers whose per-state work — excitation, prioritization,
// the persistent-singleton reduction, firing — is pure, and successors are
// claimed in the striped visited-set with insert-if-min over occurrence
// priorities, so the surviving parent edge for every marking is the one
// the serial first-writer would have recorded. A serial ordered merge then
// replays the pop sequence over the per-state records: it counts the
// state budget (truncating mid-level exactly like the serial loop), folds
// hazard notes in encounter order, appends to the next frontier only the
// occurrence that won its marking, and keeps the first violation in
// (state, transition) order. Workers past a truncation or violation point
// may have inserted extra visited entries; exploration stops before
// reading them, so no reported field can differ.
func (m *Model) Explore(ctx context.Context, opts ExploreOptions) (*Result, error) {
	max := opts.MaxStates
	if max <= 0 {
		max = DefaultMaxStates
	}
	workers := par.Workers(opts.Parallelism)
	res := &Result{
		Design: m.Design, Regions: len(m.Regions), Signals: len(m.sigs),
		MaxStates: max, Reduced: !opts.NoReduce,
	}

	init := m.initial()
	visited := par.NewStriped[visitEntry](4 * workers)
	visited.Update(string(init), func(old visitEntry, ok bool) (visitEntry, bool) {
		return visitEntry{sig: -1}, !ok
	})

	type succRef struct {
		key  string
		prio uint64
	}
	// stateRec is one frontier state's precomputed expansion, merged
	// serially afterwards.
	type stateRec struct {
		key      string
		deadlock bool
		viol     *Violation
		violSig  int
		succs    []succRef
		notes    []string
	}

	frontier := []state{init}
	popped := 0 // states dequeued before this level, fixing serial pop indices
	hazardSeen := map[string]bool{}

	for len(frontier) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		recs := make([]stateRec, len(frontier))
		process := func(j int) {
			st := frontier[j]
			rec := &recs[j]
			rec.key = string(st)
			excited := m.excited(st)
			if len(excited) == 0 {
				rec.deadlock = true
				return
			}
			enabled := m.prioritize(st, excited)
			fire := enabled
			if !opts.NoReduce {
				t, notes := m.persistentSingleton(st, enabled)
				if t >= 0 {
					fire = enabled[t : t+1]
				}
				rec.notes = notes
			}
			k := uint64(popped+j) + 1
			for t, i := range fire {
				ns, viol := m.fire(st, i)
				if viol != nil {
					rec.viol, rec.violSig = viol, i
					return
				}
				key := string(ns)
				prio := k<<prioShift | uint64(t)
				visited.Update(key, func(old visitEntry, ok bool) (visitEntry, bool) {
					return visitEntry{prio: prio, prev: rec.key, sig: int32(i)}, !ok || prio < old.prio
				})
				rec.succs = append(rec.succs, succRef{key, prio})
			}
		}
		// Small frontiers run inline: per-state work is microseconds, so
		// fanning out below a couple of states per worker costs more than
		// it saves (and the inline path is the same code either way).
		if workers == 1 || len(frontier) < 2*workers {
			for j := range frontier {
				process(j)
			}
		} else {
			slabs := par.Slabs(len(frontier), workers)
			if err := par.ForEach(ctx, workers, len(slabs), func(ctx context.Context, si int) error {
				for j := slabs[si][0]; j < slabs[si][1]; j++ {
					process(j)
				}
				return ctx.Err()
			}); err != nil {
				return nil, err
			}
		}

		// Ordered merge: replay the serial pop sequence over the records.
		var next []state
		for j := range recs {
			rec := &recs[j]
			res.States++
			if res.States > max {
				res.Truncated = true
				res.States--
				return res, nil
			}
			if rec.deadlock {
				res.Violation = &Violation{Rule: RuleDeadlock,
					Msg: "reachable marking enables no transition (handshake deadlock)"}
				m.attachTrace(res.Violation, visited, rec.key, -1)
				return res, nil
			}
			if !opts.NoReduce {
				m.noteHazards(res, hazardSeen, rec.notes)
			}
			for _, sr := range rec.succs {
				if e, ok := visited.Get(sr.key); ok && e.prio == sr.prio {
					next = append(next, state(sr.key))
				}
			}
			if rec.viol != nil {
				m.attachTrace(rec.viol, visited, rec.key, rec.violSig)
				res.Violation = rec.viol
				return res, nil
			}
		}
		popped += len(frontier)
		frontier = next
	}

	if res.Violation == nil && !res.Truncated {
		res.DeadlockFree, res.Safe, res.FlowEquivalent = true, true, true
	}
	return res, nil
}

// prioritize applies the protocol's relative-timing assumptions, which are
// exactly the two timing properties of the AND-bypass delay elements the
// flow sizes:
//
//   - rising arrivals are slow (fundamental mode): a request climbs the
//     full matched chain, sized to cover the region's datapath settling —
//     on the order of the original clock period — while any controller
//     cascade between two arrivals is a handful of gate delays. A rising
//     delay output therefore fires only from control-stable markings.
//   - falling arrivals are fast (return-to-zero): every AND stage passes a
//     low immediately, so a request withdrawal crosses the chain in one
//     gate delay and beats any multi-gate controller chain racing it. A
//     falling delay output fires before everything else.
//
// The semi-decoupled controller is not speed independent without these: a
// pure interleaving exploration reaches orderings the chains exclude by
// construction — a stale request tail serving a second capture, a request
// round trip beating a one-gate opened-bit reset — and reports their
// phantom deadlocks. Controller gates race each other freely; only the
// delay outputs are scheduled.
func (m *Model) prioritize(st state, excited []int) []int {
	var falls, fast []int
	for _, i := range excited {
		if m.sigs[i].kind == kindDelay {
			if st.bit(i) {
				falls = append(falls, i)
			}
			continue
		}
		fast = append(fast, i)
	}
	if len(falls) > 0 {
		return falls
	}
	if len(fast) > 0 {
		return fast
	}
	return excited
}

// persistentSingleton looks for one invisible excited transition that
// commutes with every other enabled transition (the exact local diamond
// check, both directions). When found, firing it alone is sound: every
// other enabled transition stays excited towards the same value, invisible
// firings never touch the enables or counters the property checks read, so
// all visible orderings survive into the successor. Arrival transitions
// are never chosen as the singleton: they only run in control-stable
// markings, where the settling an arrival triggers could legitimately
// withdraw a sibling arrival's excitation — those rare states are expanded
// fully instead. Returns -1 (full expansion) otherwise. Failed diamonds
// where a transition's excitation is withdrawn are returned as hazard
// notes — non-persistence is exactly an SI hazard of the control network.
func (m *Model) persistentSingleton(st state, excited []int) (int, []string) {
	var notes []string
	for t, i := range excited {
		if m.visible(i) || m.sigs[i].kind == kindDelay {
			continue
		}
		after := make(state, len(st))
		copy(after, st)
		after.setBit(i, !st.bit(i))
		ok := true
		for _, j := range excited {
			if j == i {
				continue
			}
			// j must stay excited towards the same value after i fires…
			if m.target(after, j) != m.target(st, j) {
				ok = false
				if m.target(after, j) == st.bit(j) {
					notes = append(notes, fmt.Sprintf("firing %s withdraws the excitation of %s", m.sigs[i].name, m.sigs[j].name))
				}
				continue
			}
			// …and i must stay excited after j fires.
			afterJ := make(state, len(st))
			copy(afterJ, st)
			afterJ.setBit(j, !st.bit(j))
			if m.target(afterJ, i) != m.target(st, i) {
				ok = false
				if m.target(afterJ, i) == st.bit(i) {
					notes = append(notes, fmt.Sprintf("firing %s withdraws the excitation of %s", m.sigs[j].name, m.sigs[i].name))
				}
			}
		}
		if ok {
			return t, notes
		}
	}
	return -1, notes
}

const maxHazardNotes = 8

func (m *Model) noteHazards(res *Result, seen map[string]bool, notes []string) {
	for _, n := range notes {
		if seen[n] || len(res.Hazards) >= maxHazardNotes {
			continue
		}
		seen[n] = true
		res.Hazards = append(res.Hazards, n)
	}
}

// attachTrace reconstructs the firing sequence from the initial marking to
// the violation's enabling marking (plus the violating event itself) and
// decodes that marking for the report. The parent edges come from the
// visited set; every ancestor's entry is final by the time a violation is
// merged (later discoveries carry higher occurrence priorities and lose).
func (m *Model) attachTrace(v *Violation, visited *par.Striped[visitEntry], key string, lastSig int) {
	enab := state(key)
	v.Marking, v.Gens = m.DecodeMarking(enab)
	var events []TraceEvent
	if lastSig >= 0 {
		events = append(events, TraceEvent{Net: m.sigs[lastSig].name, Value: !enab.bit(lastSig)})
	}
	for key != "" {
		e, ok := visited.Get(key)
		if !ok || e.sig < 0 {
			break
		}
		events = append(events, TraceEvent{Net: m.sigs[e.sig].name, Value: state(key).bit(int(e.sig))})
		key = e.prev
	}
	// Collected backwards; reverse into firing order.
	for l, r := 0, len(events)-1; l < r; l, r = l+1, r-1 {
		events[l], events[r] = events[r], events[l]
	}
	v.Events = events
}

// DecodeMarking renders a marking into per-net values and per-region
// generation counts for reports and traces.
func (m *Model) DecodeMarking(st state) (nets map[string]bool, gens map[string]int) {
	nets = map[string]bool{}
	gens = map[string]int{}
	for i := range m.sigs {
		nets[m.sigs[i].name] = st.bit(i)
	}
	for _, g := range m.Regions {
		gens[fmt.Sprintf("G%d/master", g)] = m.ctr(st, m.mCtr[g])
		gens[fmt.Sprintf("G%d/slave", g)] = m.ctr(st, m.sCtr[g])
	}
	keys := make([]int, 0, len(m.envCtr))
	for i := range m.envCtr {
		keys = append(keys, i)
	}
	sort.Ints(keys)
	for _, i := range keys {
		gens[m.sigs[i].name] = m.ctr(st, m.envCtr[i])
	}
	return nets, gens
}
