// dlx_flow runs the paper's full experimental procedure (Fig 5.1) on the
// DLX case study: generate the post-synthesis netlist, desynchronize one
// branch, place & route both, compare area, then simulate both versions
// running the same program and compare cycle time and power.
//
// Run with: go run ./examples/dlx_flow
package main

import (
	"fmt"
	"log"

	"desync/internal/expt"
	"desync/internal/netlist"
)

func main() {
	fmt.Println("== Building and implementing both DLX branches ==")
	tbl, flow, err := expt.Table51()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tbl.Render())
	fmt.Printf("regions found automatically: %d (the 4 pipeline stages)\n",
		flow.Result.Grouping.Groups)
	for _, g := range flow.Result.DDG.Nodes {
		fmt.Printf("  region %d -> %v, comb %.3f ns, delay element %d levels\n",
			g, flow.Result.DDG.Succs[g],
			flow.Result.RegionDelays[g].CombMax, flow.Result.DelayLevels[g])
	}

	fmt.Println("\n== Timing and power at both corners ==")
	fmt.Printf("%-22s %12s %12s %12s %9s\n", "version", "corner", "period (ns)", "power (mW)", "correct")
	for _, corner := range []netlist.Corner{netlist.Best, netlist.Worst} {
		p := flow.BestPeriod
		if corner == netlist.Worst {
			p = flow.Period
		}
		sr, err := expt.MeasureDLX(flow, corner, p, 30)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %12s %12.3f %12.3f %9v\n", "DLX (synchronous)", corner,
			sr.EffectivePeriod, sr.DynamicMW+sr.LeakageMW, sr.Correct)
		dr, err := expt.MeasureDDLX(flow, corner, 1, -1, 30)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %12s %12.3f %12.3f %9v\n", "DDLX (desynchronized)", corner,
			dr.EffectivePeriod, dr.DynamicMW+dr.LeakageMW, dr.Correct)
	}
	fmt.Println("\nThe desynchronized version has no clock: its period is the")
	fmt.Println("measured self-timed handshake rate, which scales with the corner")
	fmt.Println("exactly like the logic it controls.")
}
