package lint

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"desync/internal/ctrlnet"
	"desync/internal/handshake"
	"desync/internal/netlist"
	"desync/internal/sta"
)

// dsChecker carries the state the DS-* rules share: the derived
// control-network IR and the report under construction. The structural
// derivation itself — latch coloring, region graph, rendezvous trees,
// delay-chain arrivals — lives in internal/ctrlnet; the rules here only
// judge it.
type dsChecker struct {
	r  *Report
	m  *netlist.Module
	cn *ctrlnet.Network
}

// checkDesync runs the DS-* family over one post-flow module.
func (r *Report) checkDesync(m *netlist.Module, opts Options) {
	cn := opts.Network
	if cn == nil || cn.Module != m {
		cn = ctrlnet.Derive(m)
	}
	c := &dsChecker{r: r, m: m, cn: cn}
	c.checkFFs()
	if cn.Empty() {
		r.addf(RulePair, Error, m.Name, "", "",
			"no controller network found (no G<id>_Mctrl instances); the design is not desynchronized")
		return
	}
	c.checkEnables()
	c.checkPhases()
	c.checkChannels()
	c.checkCElems()
	c.checkTiming(opts)
}

// checkFFs: after substitution no flip-flop may remain (DS-FF).
func (c *dsChecker) checkFFs() {
	for _, in := range c.cn.FFs {
		c.r.addf(RuleFF, Error, c.m.Name, in.Name, "",
			fmt.Sprintf("flip-flop %s survived master/slave substitution", in.CellName()))
	}
}

// checkEnables reports the latch-coloring failure modes (DS-ENABLE): an
// unconnected enable pin, an enable no controller reaches, or one that
// mixes controller phases.
func (c *dsChecker) checkEnables() {
	for _, l := range c.cn.Latches {
		switch {
		case l.Enable == nil:
			c.r.addf(RuleEnable, Error, c.m.Name, l.Inst.Name, "",
				"latch enable pin is unconnected")
		case len(l.Roots) == 0:
			c.r.addf(RuleEnable, Error, c.m.Name, l.Inst.Name, l.Enable.Name,
				"latch enable is not driven by any controller")
		case len(l.Roots) > 1:
			var names []string
			for _, rt := range l.Roots {
				names = append(names, fmt.Sprintf("G%d/%s", rt.Region, rt.Phase))
			}
			sort.Strings(names)
			c.r.addf(RuleEnable, Error, c.m.Name, l.Inst.Name, l.Enable.Name,
				"latch enable reaches multiple controller phases: "+strings.Join(names, ", "))
		}
	}
}

// checkPhases verifies the flow-equivalence prerequisite: every
// latch-to-latch data path connects opposite phases — masters are fed by
// slaves (of the predecessor regions, or their own master→slave pair seen
// from the other side) and slaves by masters (DS-PHASE).
func (c *dsChecker) checkPhases() {
	for _, e := range c.cn.Edges {
		src := c.cn.Latch(e.Src)
		if src == nil || !src.Colored() {
			continue // uncolored (DS-ENABLE) or a flip-flop (DS-FF)
		}
		sink := c.cn.Latch(e.Sink)
		if src.Phase() != sink.Phase() {
			continue // alternating, as required
		}
		c.r.addf(RulePhase, Error, c.m.Name, e.Sink.Name, e.Net.Name,
			fmt.Sprintf("%s-phase latch is fed by %s-phase latch %s: phases must alternate",
				sink.Phase(), src.Phase(), e.Src.Name))
	}
}

// checkChannels cross-checks the req/ack wiring of every region against the
// derived region graph (DS-PAIR): the six control nets exist and are driven
// by their controller gates, the master request arrives from the rendezvous
// of exactly the predecessors' slave requests through the region's delay
// element, and the slave acknowledge rendezvouses exactly the successors'
// master acknowledges.
func (c *dsChecker) checkChannels() {
	m := c.m
	pair := func(inst, net, format string, args ...any) {
		c.r.addf(RulePair, Error, m.Name, inst, net, fmt.Sprintf(format, args...))
	}
	// Latches colored to a region without a controller can't happen (colors
	// come from controllers); the reverse — a controller pair no latch
	// listens to — is dead control logic.
	latchRegions := map[int]bool{}
	for _, l := range c.cn.Latches {
		if l.Colored() {
			latchRegions[l.Region()] = true
		}
	}
	for _, g := range c.cn.Regions {
		if !latchRegions[g] {
			pair(ctrlnet.CtrlGate(g, true, ctrlnet.GateG), "",
				"controller pair for region %d, but no latch is enabled by it", g)
		}
	}

	for _, g := range c.cn.Regions {
		ch := c.cn.Channels[g]
		missing := false
		for _, suffix := range ctrlnet.ChannelSuffixes {
			if ch.BySuffix(suffix) == nil {
				name := ctrlnet.Name(g, suffix)
				pair("", name, "control net %s is missing", name)
				missing = true
			}
		}
		if missing {
			continue
		}
		// Controller gates drive their channel nets.
		ctl := c.cn.Controllers[g]
		for _, chk := range []struct {
			net  *netlist.Net
			inst string
		}{
			{ch.MRO, ctrlnet.CtrlGate(g, true, ctrlnet.GateRO)},
			{ch.SRO, ctrlnet.CtrlGate(g, false, ctrlnet.GateRO)},
			{ch.MAI, ctrlnet.CtrlGate(g, true, ctrlnet.GateAI)},
			{ch.SAI, ctrlnet.CtrlGate(g, false, ctrlnet.GateAI)},
		} {
			if chk.net.Driver.Inst == nil || chk.net.Driver.Inst.Name != chk.inst {
				got := "nothing"
				if d := chk.net.Driver.Inst; d != nil {
					got = d.Name
				}
				pair(chk.inst, chk.net.Name, "net must be driven by %s, driven by %s", chk.inst, got)
			}
		}
		// Master acknowledges the slave: its Ao pin must see sai.
		if mg := ctl.Master.G; mg != nil {
			if ao := mg.Conn("A"); ao != ch.SAI {
				got := "(unconnected)"
				if ao != nil {
					got = ao.Name
				}
				pair(mg.Name, "", "master ack-in must be %s, got %s", ch.SAI.Name, got)
			}
		}
		// Master request reaches the slave through the master/slave element.
		msPrefix := ctrlnet.MSDelayPrefix(g) + "/"
		if a1 := m.Inst(ctrlnet.ChainStage(ctrlnet.MSDelayPrefix(g), 1)); a1 == nil {
			pair("", ch.SRI.Name, "master/slave delay element %sa1 is missing", msPrefix)
		} else if a1.Conn("B") != ch.MRO {
			pair(a1.Name, "", "master/slave element input must be %s", ch.MRO.Name)
		}
		if d := ch.SRI.Driver.Inst; d == nil || !strings.HasPrefix(d.Name, msPrefix) {
			got := "nothing"
			if d != nil {
				got = d.Name
			}
			pair("", ch.SRI.Name, "slave request must come from %s*, driven by %s", msPrefix, got)
		}

		// Request side: predecessors' slave requests → rendezvous → matched
		// delay element → mri. Completion-detected regions trace differently
		// and their request timing is data-dependent by construction.
		if c.cn.Completion[g] {
			c.r.addf(RulePair, Info, m.Name, "", ch.MRI.Name,
				fmt.Sprintf("region %d uses completion detection; request pairing not traced", g))
		} else {
			c.checkRequestSide(g, ch.MRI)
		}

		// Ack side.
		c.checkAckSide(g, ch.SAI)
	}
}

func (c *dsChecker) checkRequestSide(g int, mri *netlist.Net) {
	m := c.m
	pair := func(inst, net, format string, args ...any) {
		c.r.addf(RulePair, Error, m.Name, inst, net, fmt.Sprintf(format, args...))
	}
	dePrefix := ctrlnet.DelayPrefix(g) + "/"
	if d := mri.Driver.Inst; d == nil || !strings.HasPrefix(d.Name, dePrefix) {
		got := "nothing"
		if d != nil {
			got = d.Name
		}
		pair("", mri.Name, "master request must come through the matched element %s*, driven by %s", dePrefix, got)
	}
	a1 := m.Inst(ctrlnet.ChainStage(ctrlnet.DelayPrefix(g), 1))
	if a1 == nil {
		pair("", mri.Name, "matched delay element %sa1 is missing", dePrefix)
		return
	}
	reqSrc := a1.Conn("B")
	if reqSrc == nil {
		pair(a1.Name, "", "matched element input pin B is unconnected")
		return
	}
	preds := c.cn.Preds[g]
	switch len(preds) {
	case 0:
		port := m.Port(ctrlnet.EnvRequestPort(g))
		if port == nil || port.Dir != netlist.In || port.Net != reqSrc {
			pair(a1.Name, reqSrc.Name,
				"region %d has no predecessors: request must come from input port %s", g, ctrlnet.EnvRequestPort(g))
		}
		if m.Port(ctrlnet.EnvReqAckPort(g)) == nil {
			pair("", "", "region %d has no predecessors but no %s acknowledge port exists", g, ctrlnet.EnvReqAckPort(g))
		}
	case 1:
		want := ctrlnet.Name(preds[0], "sro")
		if reqSrc.Name != want {
			pair(a1.Name, reqSrc.Name,
				"region %d request source must be %s (its one predecessor's slave request), got %s",
				g, want, reqSrc.Name)
		}
	default:
		join := ctrlnet.Name(g, "reqjoin")
		if reqSrc.Name != join {
			pair(a1.Name, reqSrc.Name,
				"region %d has %d predecessors: request source must be rendezvous net %s, got %s",
				g, len(preds), join, reqSrc.Name)
			return
		}
		var want []string
		for _, p := range preds {
			want = append(want, ctrlnet.Name(p, "sro"))
		}
		sort.Strings(want)
		got := c.leaves(c.cn.ReqTrees[g])
		if strings.Join(got, " ") != strings.Join(want, " ") {
			pair("", reqSrc.Name,
				"region %d request rendezvous joins {%s}, want {%s} (predecessors %v)",
				g, strings.Join(got, " "), strings.Join(want, " "), preds)
		}
	}
}

func (c *dsChecker) checkAckSide(g int, sai *netlist.Net) {
	m := c.m
	pair := func(inst, net, format string, args ...any) {
		c.r.addf(RulePair, Error, m.Name, inst, net, fmt.Sprintf(format, args...))
	}
	sg := c.cn.Controllers[g].Slave.G
	if sg == nil {
		pair("", "", "slave controller %s is missing", ctrlnet.CtrlPrefix(g, false))
		return
	}
	sao := sg.Conn("A")
	if sao == nil {
		pair(sg.Name, "", "slave ack-in pin is unconnected")
		return
	}
	succs := c.cn.Succs[g]
	switch len(succs) {
	case 0:
		port := m.Port(ctrlnet.EnvAckPort(g))
		if port == nil || port.Dir != netlist.In || port.Net != sao {
			pair(sg.Name, sao.Name,
				"region %d has no successors: acknowledge must come from input port %s", g, ctrlnet.EnvAckPort(g))
		}
		if m.Port(ctrlnet.EnvReadyPort(g)) == nil {
			pair("", "", "region %d has no successors but no %s request port exists", g, ctrlnet.EnvReadyPort(g))
		}
	case 1:
		want := ctrlnet.Name(succs[0], "mai")
		if sao.Name != want {
			pair(sg.Name, sao.Name,
				"region %d acknowledge source must be %s (its one successor's master ack), got %s",
				g, want, sao.Name)
		}
	default:
		join := ctrlnet.Name(g, "sao")
		if sao.Name != join {
			pair(sg.Name, sao.Name,
				"region %d has %d successors: acknowledge must be rendezvous net %s, got %s",
				g, len(succs), join, sao.Name)
			return
		}
		var want []string
		for _, s := range succs {
			want = append(want, ctrlnet.Name(s, "mai"))
		}
		sort.Strings(want)
		got := c.leaves(c.cn.AckTrees[g])
		if strings.Join(got, " ") != strings.Join(want, " ") {
			pair("", sao.Name,
				"region %d acknowledge rendezvous joins {%s}, want {%s} (successors %v)",
				g, strings.Join(got, " "), strings.Join(want, " "), succs)
		}
	}
}

// leaves returns a tree's external inputs, empty for a missing tree.
func (c *dsChecker) leaves(t *ctrlnet.CTree) []string {
	if t == nil {
		return nil
	}
	return t.Leaves
}

// checkCElems verifies rendezvous completeness (DS-CELEM): every C-element
// input must be connected, driven, non-constant, and distinct — a missing
// or tied leg makes the rendezvous fire early or deadlock.
func (c *dsChecker) checkCElems() {
	for _, in := range c.m.Insts {
		if in.Cell == nil || in.Cell.Kind != netlist.KindCElem {
			continue
		}
		seen := map[*netlist.Net]string{}
		for _, p := range in.Cell.Pins {
			if p.Dir != netlist.In {
				continue
			}
			n := in.Conn(p.Name)
			switch {
			case n == nil:
				c.r.addf(RuleCElem, Error, c.m.Name, in.Name, "",
					fmt.Sprintf("rendezvous input %s is unconnected", p.Name))
				continue
			case !n.HasDriver():
				c.r.addf(RuleCElem, Error, c.m.Name, in.Name, n.Name,
					fmt.Sprintf("rendezvous input %s floats", p.Name))
			case n.Driver.Inst != nil && n.Driver.Inst.Cell != nil &&
				n.Driver.Inst.Cell.Kind == netlist.KindTie:
				c.r.addf(RuleCElem, Error, c.m.Name, in.Name, n.Name,
					fmt.Sprintf("rendezvous input %s is tied constant: the rendezvous can never wait on it", p.Name))
			}
			if prev, dup := seen[n]; dup {
				c.r.addf(RuleCElem, Error, c.m.Name, in.Name, n.Name,
					fmt.Sprintf("inputs %s and %s share one net: the rendezvous is degenerate", prev, p.Name))
			}
			seen[n] = p.Name
		}
	}
}

// checkTiming runs the two STA cross-checks: DS-SDC (every cyclic control
// path is covered by a loop-breaking constraint) and DS-MARGIN (every
// matched delay element covers its region's launch-to-capture budget at the
// worst corner, honoring per-instance variability factors).
func (c *dsChecker) checkTiming(opts Options) {
	m := c.m
	staOpts := sta.Options{Corner: netlist.Worst, AutoBreakLoops: true}
	if opts.Constraints != nil {
		staOpts.Disabled = map[sta.ArcKey]bool{}
		for _, da := range opts.Constraints.Disabled {
			staOpts.Disabled[sta.ArcKey{Inst: da.Inst, From: da.From, To: da.To}] = true
		}
		// Every controller needs its three loop-breaking disables present.
		for _, g := range c.cn.Regions {
			for _, master := range []bool{true, false} {
				for _, a := range handshake.ControllerDisabledArcs(ctrlnet.CtrlPrefix(g, master)) {
					if !staOpts.Disabled[sta.ArcKey{Inst: a[0], From: a[1], To: a[2]}] {
						c.r.addf(RuleSDC, Error, m.Name, a[0], "",
							fmt.Sprintf("loop-breaking constraint missing for arc %s %s->%s", a[0], a[1], a[2]))
					}
				}
			}
		}
	} else {
		c.r.addf(RuleSDC, Info, m.Name, "", "",
			"no SDC constraints supplied; loop coverage not cross-checked")
	}

	g, err := sta.Build(m, staOpts)
	if err != nil {
		c.r.addf(RuleSDC, Error, m.Name, "", "", fmt.Sprintf("timing graph build failed: %v", err))
		return
	}
	if opts.Constraints != nil {
		for _, ak := range g.AutoBroken {
			c.r.addf(RuleSDC, Error, m.Name, ak.Inst, "",
				fmt.Sprintf("cyclic control path not covered by the constraints; auto-broken at %s %s->%s",
					ak.Inst, ak.From, ak.To))
		}
	}

	rds, err := c.cn.RegionBudgets(staOpts.Disabled, opts.Parallelism)
	if err != nil {
		c.r.addf(RuleMargin, Error, m.Name, "", "",
			fmt.Sprintf("region delay analysis failed: %v", err))
		return
	}
	// Worst latch launch + capture cost, for the master/slave elements.
	var c2q, setup float64
	for _, in := range m.Insts {
		cd := in.Cell
		if cd == nil || cd.Kind != netlist.KindLatch {
			continue
		}
		if a := cd.Arc(cd.Seq.ClockPin, cd.Seq.Q); a != nil {
			c2q = math.Max(c2q, math.Max(a.Rise.Worst, a.Fall.Worst))
		}
		setup = math.Max(setup, cd.Setup.Worst)
	}
	const eps = 1e-9
	for _, reg := range c.cn.Regions {
		if ms := c.cn.MSDelays[reg]; ms != nil {
			if budget := c2q + setup; ms.Delay+eps < budget {
				c.r.addf(RuleMargin, Error, m.Name, ctrlnet.ChainStage(ctrlnet.MSDelayPrefix(reg), 1), "",
					fmt.Sprintf("master/slave element (%d levels, %.3f ns) is under the latch launch+capture cost %.3f ns",
						ms.Levels, ms.Delay, budget))
			}
		}
		if c.cn.Completion[reg] {
			continue // completion detection: timing is data-dependent by construction
		}
		de := c.cn.ReqDelays[reg]
		if de == nil {
			continue // missing element already reported by DS-PAIR
		}
		rd := rds[reg]
		if rd == nil {
			continue
		}
		if budget := rd.Budget(); de.Delay+eps < budget {
			c.r.addf(RuleMargin, Error, m.Name, ctrlnet.ChainStage(ctrlnet.DelayPrefix(reg), 1), "",
				fmt.Sprintf("matched element (%d levels, %.3f ns) does not cover region %d's budget %.3f ns (worst path into %s)",
					de.Levels, de.Delay, reg, budget, rd.WorstPath))
		}
	}
}
