package sim

// This file holds the fault-injection hooks: pin (force) and release nets,
// and schedule arbitrary callbacks on the event queue. internal/faults
// drives these to model stuck-at faults and glitches on the handshake
// network; they are inert (zero overhead on the hot path) until first used.

import (
	"container/heap"
	"fmt"
	"math"

	"desync/internal/logic"
)

// At schedules fn to run at absolute simulation time t (≥ now). The
// callback runs with the simulator positioned at t and may force, release
// or drive nets.
func (s *Simulator) At(t float64, fn func()) error {
	if t < s.now {
		return fmt.Errorf("sim: action at %.4f is in the past (now %.4f)", t, s.now)
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return fmt.Errorf("sim: bad action time %v", t)
	}
	s.actions = append(s.actions, fn)
	s.seq++
	heap.Push(&s.q, event{t: t, seq: s.seq, net: -1, act: int32(len(s.actions))})
	return nil
}

// Force pins the named net to v from time at onward: transitions scheduled
// by its driver (or by Drive) are dropped while the pin holds. It models a
// stuck-at fault when left forced, or a glitch when paired with Release.
func (s *Simulator) Force(name string, v logic.V, at float64) error {
	n := s.M.Net(name)
	if n == nil {
		return fmt.Errorf("sim: no net %q to force", name)
	}
	idx := s.netIdx[n]
	return s.At(at, func() { s.forceNet(idx, v) })
}

// Release unpins the named net at time at and re-derives its value from its
// combinational driver, if any; sequential drivers reassert it at their
// next evaluation.
func (s *Simulator) Release(name string, at float64) error {
	n := s.M.Net(name)
	if n == nil {
		return fmt.Errorf("sim: no net %q to release", name)
	}
	idx := s.netIdx[n]
	return s.At(at, func() { s.releaseNet(idx) })
}

func (s *Simulator) forceNet(idx int, v logic.V) {
	if s.forced == nil {
		s.forced = make([]bool, len(s.nets))
	}
	s.forced[idx] = true
	// Cancel any pending inertial transition so a queued event cannot sneak
	// in after release with a stale generation.
	s.gen[idx]++
	s.pendOK[idx] = false
	if s.val[idx] != v {
		s.applyChange(idx, v)
	}
}

func (s *Simulator) releaseNet(idx int) {
	if s.forced == nil || !s.forced[idx] {
		return
	}
	s.forced[idx] = false
	// Recompute the driven value: a combinational driver re-evaluates and
	// schedules the correct level; sequential or port drivers reassert on
	// their own next event.
	if drv := s.nets[idx].Driver.Inst; drv != nil {
		s.evaluate(drv, "")
	}
}
