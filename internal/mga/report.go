package mga

import (
	"encoding/json"
	"fmt"
	"io"

	"desync/internal/lint"
)

// Rule identifiers. Stable: baselines, golden tests and DESIGN.md §14
// refer to them by name.
const (
	RuleLive  = "MG-LIVE"  // structural liveness: dead inputs, token-free cycles
	RuleSafe  = "MG-SAFE"  // place bounds, reset phases, request-vs-data cross-check
	RuleCycle = "MG-CYCLE" // critical cycle and static period bound
	RulePerf  = "MG-PERF"  // per-region bottleneck channel
)

// Rules catalogs the analyzer's findings for documentation surfaces.
var Rules = []lint.RuleInfo{
	{ID: RuleLive, Severity: lint.Error, Summary: "marked graph not live: dead handshake input or token-free cycle"},
	{ID: RuleSafe, Severity: lint.Error, Summary: "marked graph not safe: unbounded place, reset-phase inversion, or unsynchronized data edge"},
	{ID: RuleCycle, Severity: lint.Info, Summary: "critical handshake cycle and static period bound"},
	{ID: RulePerf, Severity: lint.Info, Summary: "per-region bottleneck channel and local cycle period"},
}

// RegionPerf is one region's locally worst channel cycle.
type RegionPerf struct {
	Region   int     `json:"region"`
	Channel  string  `json:"channel"`
	PeriodNs float64 `json:"period_ns"`
}

// Report is the outcome of one static analysis: structural verdicts, the
// throughput bound, and lint-style findings. It is deterministic — the
// same design yields byte-identical text and JSON on every run.
type Report struct {
	Design      string `json:"design"`
	Regions     int    `json:"regions"`
	Transitions int    `json:"transitions"`
	PlaceCount  int    `json:"places"`

	Live     bool `json:"live"`
	Safe     bool `json:"safe"`
	MaxBound int  `json:"max_bound"`

	// PeriodNs is the maximum cycle ratio: an upper bound on the
	// steady-state period (0 when liveness failed and no bound exists).
	PeriodNs      float64      `json:"period_ns"`
	CriticalCycle []string     `json:"critical_cycle,omitempty"`
	Bottleneck    string       `json:"bottleneck,omitempty"`
	PerRegion     []RegionPerf `json:"per_region,omitempty"`

	Findings []lint.Finding `json:"-"`

	// ModelFindings carries the equiv extraction's EQ-MODEL diagnostics
	// when Analyze built the graph from a netlist, so gates report stuck
	// or unmodelled sources next to the structural verdicts.
	ModelFindings []lint.Finding `json:"-"`
}

// Errors reports how many error-severity findings the analysis produced.
func (r *Report) Errors() int {
	n := 0
	for _, f := range r.Findings {
		if f.Severity == lint.Error {
			n++
		}
	}
	return n
}

// LintReport folds the findings (plus any extra, e.g. the model
// extraction's EQ-MODEL diagnostics) into a lint report for the shared
// gating machinery.
func (r *Report) LintReport(extra []lint.Finding) *lint.Report {
	lr := &lint.Report{}
	lr.Merge(r.Findings)
	lr.Merge(extra)
	return lr
}

// WriteText renders the report for terminals: verdict lines, the critical
// cycle, and every finding in lint's one-line format.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "design:       %s\n", r.Design)
	fmt.Fprintf(w, "marked graph: %d regions, %d transitions, %d places\n",
		r.Regions, r.Transitions, r.PlaceCount)
	fmt.Fprintf(w, "MG-LIVE:      %s\n", verdict(r.Live, "live (every cycle carries a token; no dead inputs)", "NOT LIVE"))
	fmt.Fprintf(w, "MG-SAFE:      %s\n", verdict(r.Safe, fmt.Sprintf("safe (every place bounded at %d token)", r.MaxBound), "NOT SAFE"))
	if r.PeriodNs > 0 {
		fmt.Fprintf(w, "MG-CYCLE:     static period bound %.4f ns (bottleneck %s)\n", r.PeriodNs, r.Bottleneck)
		fmt.Fprintf(w, "  critical:   %s\n", joinNames(r.CriticalCycle))
		for _, p := range r.PerRegion {
			fmt.Fprintf(w, "  region %-4d %-10s %.4f ns\n", p.Region, p.Channel, p.PeriodNs)
		}
	}
	for _, f := range r.Findings {
		if f.Severity == lint.Info && (f.Rule == RuleCycle || f.Rule == RulePerf) {
			continue // already rendered above
		}
		fmt.Fprintf(w, "%s\n", f.String())
	}
}

func verdict(ok bool, yes, no string) string {
	if ok {
		return yes
	}
	return no
}

// WriteJSON renders the report as indented JSON with the findings
// attached in lint's wire form.
func (r *Report) WriteJSON(w io.Writer) error {
	type jsonFinding struct {
		lint.Finding
		SeverityName string `json:"severity"`
	}
	out := struct {
		*Report
		Findings []jsonFinding `json:"findings"`
	}{Report: r, Findings: []jsonFinding{}}
	for _, f := range r.Findings {
		out.Findings = append(out.Findings, jsonFinding{Finding: f, SeverityName: f.Severity.String()})
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}
