// protocols explores the desynchronization handshake protocols of Fig 2.4:
// each is a Signal Transition Graph over adjacent latch enables; the
// checker exhaustively executes every interleaving over a latch ring,
// verifying liveness and flow equivalence and counting reachable states.
//
// Run with: go run ./examples/protocols
package main

import (
	"fmt"
	"log"

	"desync/internal/stg"
)

func main() {
	fmt.Println("Latch-enable handshake protocols, by decreasing concurrency")
	fmt.Println("(A = upstream latch enable, B = downstream; k = token index)")
	fmt.Println()
	for i := range stg.Protocols {
		p := &stg.Protocols[i]
		fmt.Printf("%s\n", p.Name)
		for _, c := range p.Cross {
			fmt.Printf("    arc %v\n", c)
		}
		pg, err := p.PairGraph()
		if err != nil {
			log.Fatal(err)
		}
		r := pg.Reachable(100000)
		states := fmt.Sprintf("%d", r.States)
		if r.Unbounded {
			states = "unbounded"
		}
		rep, err := p.CheckRing(2, 2_000_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    pair states: %s   ring: live=%v flow-equivalent=%v\n",
			states, rep.Live, rep.FlowEquiv)
		if rep.Violation != "" {
			fmt.Printf("    violation: %s\n", rep.Violation)
		}
		// Scale the ring and confirm the classification is stable.
		if rep.Live && rep.FlowEquiv {
			rep3, err := p.CheckRing(3, 8_000_000)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("    3-register ring: live=%v flow-equivalent=%v (%d states explored)\n",
				rep3.Live, rep3.FlowEquiv, rep3.States)
		}
		fmt.Println()
	}
	fmt.Println("The two broken variants demonstrate the failure modes the paper")
	fmt.Println("warns about: dropping the data-validity arc loses flow equivalence")
	fmt.Println("(data overwriting); over-constraining deadlocks the ring.")
}
