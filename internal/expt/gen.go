package expt

import (
	"context"

	"desync/internal/core"
	"desync/internal/designs"
	"desync/internal/netlist"
	"desync/internal/sta"
)

// GenFlow holds a generic desynchronization run over any generator spec
// designs.ParseSpec accepts — the path drequiv and drsweep take for
// parametric designs (pipeline, riscv, des), where no hand-tuned
// case-study flow exists.
type GenFlow struct {
	Spec   string
	Sync   *netlist.Design
	Desync *netlist.Design
	Result *core.Result
	// Period is the synchronous worst-case clock period from STA (ns).
	Period float64
}

// RunGenFlow builds the spec's design twice (a synchronous reference and
// the desynchronization branch), takes the clock period from STA exactly as
// the FIR flow does, and desynchronizes. Pre-grouped generators (arm and
// the pipeline family) run with manual grouping — the generator bakes the
// region assignment into the instances.
func RunGenFlow(spec string, cfg FlowConfig) (*GenFlow, error) {
	f := &GenFlow{Spec: spec}
	var err error
	if f.Sync, err = designs.ParseSpec(spec, nil); err != nil {
		return nil, err
	}
	core.CleanLogic(f.Sync.Top)
	rds, err := sta.RegionDelays(context.Background(), f.Sync.Top, netlist.Worst, sta.Options{})
	if err != nil {
		return nil, err
	}
	for _, rd := range rds {
		if b := rd.Budget(); b > f.Period {
			f.Period = b
		}
	}
	f.Period *= 1.15

	if f.Desync, err = designs.ParseSpec(spec, nil); err != nil {
		return nil, err
	}
	f.Result, err = core.Convert(context.Background(), f.Desync, core.Options{
		Backend:      cfg.Backend,
		Mode:         cfg.Mode,
		Period:       f.Period,
		Margin:       cfg.Margin,
		MuxTaps:      cfg.MuxTaps,
		TapScales:    cfg.TapScales,
		ManualGroups: designs.PreGrouped(spec),
		Parallelism:  cfg.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	return f, nil
}
