package sdc

// Parse reads constraints back from the SDC dialect Write emits, so
// downstream tools (and tests) can consume a generated .sdc file without a
// full Tcl interpreter. Unknown commands and malformed directives are
// reported with line numbers rather than skipped: a constraint file that
// silently loses a set_disable_timing line would let STA "verify" a design
// through an arc the flow meant to cut.

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses SDC text produced by Constraints.Write.
func Parse(text string) (*Constraints, error) {
	c := &Constraints{}
	// set_min_delay / set_max_delay lines pair up into one PointDelay.
	pdIndex := map[[2]string]int{}
	for i, raw := range strings.Split(text, "\n") {
		lineNo := i + 1
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		toks, err := tokenizeSDC(line)
		if err != nil {
			return nil, fmt.Errorf("sdc: line %d: %w", lineNo, err)
		}
		p := &sdcLine{toks: toks, no: lineNo}
		cmd, err := p.word()
		if err != nil {
			return nil, err
		}
		switch cmd {
		case "create_clock":
			if err := p.clock(c); err != nil {
				return nil, err
			}
		case "set_disable_timing":
			if err := p.disable(c); err != nil {
				return nil, err
			}
		case "set_size_only":
			g, err := p.collection("get_cells")
			if err != nil {
				return nil, err
			}
			c.SizeOnly = append(c.SizeOnly, g...)
		case "set_min_delay", "set_max_delay":
			if err := p.pointDelay(c, cmd == "set_min_delay", pdIndex); err != nil {
				return nil, err
			}
		case "set_false_path":
			from, to, err := p.fromToPins()
			if err != nil {
				return nil, err
			}
			c.FalsePaths = append(c.FalsePaths, [2]string{from, to})
		default:
			return nil, fmt.Errorf("sdc: line %d: unknown command %q", lineNo, cmd)
		}
		if len(p.toks) != 0 {
			return nil, fmt.Errorf("sdc: line %d: trailing tokens after %s", lineNo, cmd)
		}
	}
	return c, nil
}

// sdcTok is one token of an SDC line: a bare word, a "quoted string", or a
// {brace group} split on whitespace. Brackets are dropped by the tokenizer —
// the grammar Write emits never nests collections.
type sdcTok struct {
	word  string
	items []string // non-nil for a {...} group
}

func tokenizeSDC(s string) ([]sdcTok, error) {
	var toks []sdcTok
	for i := 0; i < len(s); {
		switch ch := s[i]; {
		case ch == ' ' || ch == '\t' || ch == '[' || ch == ']':
			i++
		case ch == '{':
			j := strings.IndexByte(s[i:], '}')
			if j < 0 {
				return nil, fmt.Errorf("unterminated { group")
			}
			toks = append(toks, sdcTok{items: strings.Fields(s[i+1 : i+j])})
			i += j + 1
		case ch == '}':
			return nil, fmt.Errorf("unmatched }")
		case ch == '"':
			j := strings.IndexByte(s[i+1:], '"')
			if j < 0 {
				return nil, fmt.Errorf("unterminated string")
			}
			toks = append(toks, sdcTok{word: s[i+1 : i+1+j]})
			i += j + 2
		default:
			j := i
			for j < len(s) && !strings.ContainsRune(" \t[]{}\"", rune(s[j])) {
				j++
			}
			toks = append(toks, sdcTok{word: s[i:j]})
			i = j
		}
	}
	return toks, nil
}

// sdcLine consumes tokens of one directive.
type sdcLine struct {
	toks []sdcTok
	no   int
}

func (p *sdcLine) errf(format string, args ...any) error {
	return fmt.Errorf("sdc: line %d: %s", p.no, fmt.Sprintf(format, args...))
}

func (p *sdcLine) next() (sdcTok, error) {
	if len(p.toks) == 0 {
		return sdcTok{}, p.errf("unexpected end of line")
	}
	t := p.toks[0]
	p.toks = p.toks[1:]
	return t, nil
}

func (p *sdcLine) word() (string, error) {
	t, err := p.next()
	if err != nil {
		return "", err
	}
	if t.items != nil {
		return "", p.errf("expected a word, got a {} group")
	}
	return t.word, nil
}

func (p *sdcLine) float() (float64, error) {
	w, err := p.word()
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(w, 64)
	if err != nil {
		return 0, p.errf("bad number %q", w)
	}
	return v, nil
}

func (p *sdcLine) group() ([]string, error) {
	t, err := p.next()
	if err != nil {
		return nil, err
	}
	if t.items == nil {
		return nil, p.errf("expected a {} group, got %q", t.word)
	}
	return t.items, nil
}

// collection consumes "<coll> {a b ...}" and returns the members.
func (p *sdcLine) collection(coll string) ([]string, error) {
	w, err := p.word()
	if err != nil {
		return nil, err
	}
	if w != coll {
		return nil, p.errf("expected %s, got %q", coll, w)
	}
	g, err := p.group()
	if err != nil {
		return nil, err
	}
	if len(g) == 0 {
		return nil, p.errf("empty %s collection", coll)
	}
	return g, nil
}

func (p *sdcLine) clock(c *Constraints) error {
	ck := Clock{Period: -1}
	var haveSrc bool
	for len(p.toks) > 0 {
		w, err := p.word()
		if err != nil {
			return err
		}
		switch w {
		case "-name":
			if ck.Name, err = p.word(); err != nil {
				return err
			}
		case "-period":
			if ck.Period, err = p.float(); err != nil {
				return err
			}
		case "-waveform":
			g, err := p.group()
			if err != nil {
				return err
			}
			if len(g) != 2 {
				return p.errf("waveform needs 2 edges, got %d", len(g))
			}
			for k, s := range g {
				v, err := strconv.ParseFloat(s, 64)
				if err != nil {
					return p.errf("bad waveform edge %q", s)
				}
				ck.Waveform[k] = v
			}
		case "get_ports", "get_pins":
			if ck.Sources, err = p.group(); err != nil {
				return err
			}
			if len(ck.Sources) == 0 {
				return p.errf("clock %q has no sources", ck.Name)
			}
			ck.OnPins = w == "get_pins"
			haveSrc = true
		default:
			return p.errf("unknown create_clock argument %q", w)
		}
	}
	if ck.Name == "" {
		return p.errf("create_clock without -name")
	}
	if ck.Period <= 0 {
		return p.errf("clock %q without a positive -period", ck.Name)
	}
	if !haveSrc {
		return p.errf("clock %q has no sources", ck.Name)
	}
	c.Clocks = append(c.Clocks, ck)
	return nil
}

func (p *sdcLine) disable(c *Constraints) error {
	var d DisabledArc
	for len(p.toks) > 0 {
		w, err := p.word()
		if err != nil {
			return err
		}
		switch w {
		case "-from":
			if d.From, err = p.word(); err != nil {
				return err
			}
		case "-to":
			if d.To, err = p.word(); err != nil {
				return err
			}
		case "get_cells":
			g, err := p.group()
			if err != nil {
				return err
			}
			if len(g) != 1 {
				return p.errf("set_disable_timing wants one cell, got %d", len(g))
			}
			d.Inst = g[0]
		default:
			return p.errf("unknown set_disable_timing argument %q", w)
		}
	}
	if d.Inst == "" || d.From == "" || d.To == "" {
		return p.errf("set_disable_timing missing -from/-to/cell")
	}
	c.Disabled = append(c.Disabled, d)
	return nil
}

// fromToPins consumes "-from [get_pins {F}] -to [get_pins {T}]".
func (p *sdcLine) fromToPins() (from, to string, err error) {
	for len(p.toks) > 0 {
		w, err := p.word()
		if err != nil {
			return "", "", err
		}
		var dst *string
		switch w {
		case "-from":
			dst = &from
		case "-to":
			dst = &to
		default:
			return "", "", p.errf("unknown argument %q", w)
		}
		g, err := p.collection("get_pins")
		if err != nil {
			return "", "", err
		}
		if len(g) != 1 {
			return "", "", p.errf("%s wants one pin, got %d", w, len(g))
		}
		*dst = g[0]
	}
	if from == "" || to == "" {
		return "", "", p.errf("missing -from or -to")
	}
	return from, to, nil
}

func (p *sdcLine) pointDelay(c *Constraints, isMin bool, index map[[2]string]int) error {
	v, err := p.float()
	if err != nil {
		return err
	}
	from, to, err := p.fromToPins()
	if err != nil {
		return err
	}
	key := [2]string{from, to}
	i, ok := index[key]
	if !ok {
		i = len(c.PointDelays)
		index[key] = i
		c.PointDelays = append(c.PointDelays, PointDelay{From: from, To: to})
	}
	if isMin {
		c.PointDelays[i].Min = v
	} else {
		c.PointDelays[i].Max = v
	}
	return nil
}
