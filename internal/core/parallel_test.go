package core

import (
	"context"
	"errors"
	"testing"
)

// TestDesynchronizeCancellation: a context canceled before the flow starts
// aborts at the import stage as a FlowError wrapping context.Canceled, so
// callers can distinguish "the user hit Ctrl-C" from a broken design.
func TestDesynchronizeCancellation(t *testing.T) {
	d := buildPipelineRing(hs())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Desynchronize(ctx, d, Options{Period: 3.0})
	if res != nil {
		t.Fatalf("canceled flow returned a result: %+v", res)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if got := StageOf(err); got != StageImport {
		t.Fatalf("stage = %q, want %q", got, StageImport)
	}
}

// TestECOCalibrateCancellation: the repair path observes cancellation
// between regions.
func TestECOCalibrateCancellation(t *testing.T) {
	d := buildPipelineRing(hs())
	res, err := Desynchronize(context.Background(), d, Options{Period: 3.0})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ECOCalibrate(ctx, d, res, 1.15, false); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
