// completion demonstrates §2.4.4's alternative to matched delay elements:
// dual-rail completion detection. The desynchronized DLX is built both
// ways and simulated; the completion-detected version's cycle time varies
// with the data (average-case operation), while the matched-delay version
// runs at a fixed, worst-case-plus-margin rate.
//
// Run with: go run ./examples/completion
package main

import (
	"fmt"
	"log"

	"desync/internal/core"
	"desync/internal/expt"
	"desync/internal/netlist"
)

func main() {
	fmt.Println("== Matched delay elements (the paper's choice) ==")
	fd, err := expt.RunDLXFlow(expt.FlowConfig{})
	if err != nil {
		log.Fatal(err)
	}
	rd, err := expt.MeasureDDLX(fd, netlist.Worst, 1, -1, 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("effective period: %.3f ns (fixed; sized for the worst case)\n", rd.EffectivePeriod)
	fmt.Printf("flow equivalent: %v\n\n", rd.Correct)

	fmt.Println("== Completion detection (§2.4.4 alternative) ==")
	fc, err := expt.RunDLXFlow(expt.FlowConfig{Mode: core.ModeCompletion})
	if err != nil {
		log.Fatal(err)
	}
	rc, err := expt.MeasureDDLX(fc, netlist.Worst, 1, -1, 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("effective period: %.3f ns (average over data-dependent cycles)\n", rc.EffectivePeriod)
	fmt.Printf("flow equivalent: %v\n", rc.Correct)
	fmt.Printf("completion-network cells: %d (the ~2x combinational cost the paper cites)\n\n",
		fc.Result.Insert.CompletionCells)

	speedup := rd.EffectivePeriod / rc.EffectivePeriod
	fmt.Printf("average-case speedup over matched delays: %.2fx\n", speedup)
	fmt.Println("\nThe trade: completion detection tracks the actual data (carry")
	fmt.Println("chains that don't ripple complete early), where delay elements")
	fmt.Println("must always budget for the critical path — at roughly double")
	fmt.Println("the combinational area (§2.4.4).")
}
