package sta

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"desync/internal/netlist"
)

// regionFixture builds a module with n regions, region g holding a chain of
// g AND gates into one flip-flop, so RegionDelays has distinct per-region
// work to fan out and distinct answers to compare.
func regionFixture(t *testing.T, n int) *netlist.Module {
	t.Helper()
	lib := hs()
	m := netlist.NewModule("m")
	m.AddPort("ck", netlist.In)
	m.AddPort("in", netlist.In)
	for g := 1; g <= n; g++ {
		prev := m.Net("in")
		for i := 0; i < g; i++ {
			z := m.AddNet(nodeName(10*g + i))
			and := m.AddInst(nodeName(10*g+i)+"_g", lib.MustCell("AND2X1"))
			and.Group = g
			m.MustConnect(and, "A", prev)
			m.MustConnect(and, "B", m.Net("in"))
			m.MustConnect(and, "Z", z)
			prev = z
		}
		ff := m.AddInst(nodeName(10*g)+"_f", lib.MustCell("DFFQX1"))
		ff.Group = g
		m.MustConnect(ff, "D", prev)
		m.MustConnect(ff, "CK", m.Net("ck"))
		m.MustConnect(ff, "Q", m.AddNet(nodeName(10*g)+"_q"))
		m.MustConnect(ff, "QN", m.AddNet(nodeName(10*g)+"_qn"))
	}
	return m
}

// TestRegionDelaysParallelDeterministic: per-region extraction at any
// worker count returns exactly the serial result.
func TestRegionDelaysParallelDeterministic(t *testing.T) {
	m := regionFixture(t, 6)
	serial, err := RegionDelays(context.Background(), m, netlist.Worst, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 6 {
		t.Fatalf("fixture produced %d regions, want 6", len(serial))
	}
	for _, j := range []int{2, 4, 0} {
		par, err := RegionDelays(context.Background(), m, netlist.Worst, Options{Parallelism: j})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("-j %d region delays differ from serial", j)
		}
	}
}

// TestRegionDelaysCancellation: a canceled context aborts the extraction.
func TestRegionDelaysCancellation(t *testing.T) {
	m := regionFixture(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RegionDelays(ctx, m, netlist.Worst, Options{Parallelism: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
