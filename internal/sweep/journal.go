package sweep

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"

	"desync/internal/faults"
)

// The checkpoint journal is an append-only frame stream:
//
//	magic "drsweepj1\n"
//	frame*: uint32 LE payload length | uint32 LE CRC32(IEEE) of payload | payload
//
// The first frame is the Header JSON; every later frame is one Record JSON
// with strictly consecutive indexes starting at 0 — exactly the fold order,
// so "resume" is "replay the prefix, then fold from the next index". A
// torn tail (the frame at EOF is incomplete or fails its CRC) is what a
// crash legitimately leaves behind and is tolerated: the reader reports the
// clean prefix length and resume truncates to it. Anything else — a bad
// magic, an implausible length prefix, a CRC or index violation with more
// data after it — is corruption and is refused with ErrCorrupt.

var (
	// ErrCorrupt: the journal is damaged beyond a torn tail (bad magic,
	// corrupted length prefix, mid-file CRC failure, out-of-order or
	// duplicate record index). Resuming from it would silently lose or
	// repeat scenarios, so the engine refuses.
	ErrCorrupt = errors.New("sweep: journal corrupt")
	// ErrMismatch: the journal's header describes a different sweep (other
	// seed, space or fault matrix) than the one resuming.
	ErrMismatch = errors.New("sweep: journal config mismatch")
)

var journalMagic = []byte("drsweepj1\n")

// maxFrame bounds a frame payload; a length prefix beyond it is corruption,
// not a huge record (a Record is a few KB even with diagnostics attached).
const maxFrame = 1 << 24

// Header identifies the sweep a journal belongs to. Resume compares every
// field: replaying records from a different space or seed would fold
// nonsense into the aggregates.
type Header struct {
	Design  string    `json:"design"`
	Seed    int64     `json:"seed"`
	Corners []float64 `json:"corners"`
	Chips   int       `json:"chips"`
	Sigma   float64   `json:"sigma"`
	// FaultsHash fingerprints the fault matrix (FNV-1a over its JSON), so a
	// changed enumeration is caught without storing every fault.
	FaultsHash uint64 `json:"faults_hash"`
	Total      int    `json:"total"`
}

func (h Header) equal(o Header) bool {
	if h.Design != o.Design || h.Seed != o.Seed || h.Chips != o.Chips ||
		h.Sigma != o.Sigma || h.FaultsHash != o.FaultsHash || h.Total != o.Total ||
		len(h.Corners) != len(o.Corners) {
		return false
	}
	for i := range h.Corners {
		if h.Corners[i] != o.Corners[i] {
			return false
		}
	}
	return true
}

// ReadJournal parses a journal image. It returns the header (nil when the
// file is so short even the header frame is torn), the clean record prefix,
// and the byte offset of the end of that prefix — the length resume
// truncates the file to. A torn tail is not an error; corruption is.
func ReadJournal(data []byte) (*Header, []Record, int, error) {
	if len(data) < len(journalMagic) {
		if len(data) == 0 {
			return nil, nil, 0, nil
		}
		if !hasPrefix(journalMagic, data) {
			return nil, nil, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
		}
		// A torn magic write: tolerate as an empty journal.
		return nil, nil, 0, nil
	}
	if string(data[:len(journalMagic)]) != string(journalMagic) {
		return nil, nil, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	off := len(journalMagic)
	var hdr *Header
	var recs []Record
	for off < len(data) {
		rest := len(data) - off
		if rest < 8 {
			return hdr, recs, off, nil // torn frame prefix at EOF
		}
		length := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if length > maxFrame {
			return hdr, recs, off, fmt.Errorf("%w: frame length %d at offset %d", ErrCorrupt, length, off)
		}
		if rest < 8+int(length) {
			return hdr, recs, off, nil // torn payload at EOF
		}
		payload := data[off+8 : off+8+int(length)]
		end := off + 8 + int(length)
		if crc32.ChecksumIEEE(payload) != sum {
			if end == len(data) {
				return hdr, recs, off, nil // torn write of the final frame
			}
			return hdr, recs, off, fmt.Errorf("%w: CRC mismatch at offset %d", ErrCorrupt, off)
		}
		if hdr == nil {
			var h Header
			if err := json.Unmarshal(payload, &h); err != nil {
				return nil, nil, off, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
			}
			hdr = &h
		} else {
			var r Record
			if err := json.Unmarshal(payload, &r); err != nil {
				return hdr, recs, off, fmt.Errorf("%w: record %d: %v", ErrCorrupt, len(recs), err)
			}
			if r.Index != len(recs) {
				return hdr, recs, off, fmt.Errorf("%w: record index %d at position %d", ErrCorrupt, r.Index, len(recs))
			}
			recs = append(recs, r)
		}
		off = end
	}
	return hdr, recs, off, nil
}

// hasPrefix reports whether data is a prefix of want.
func hasPrefix(want, data []byte) bool {
	if len(data) > len(want) {
		return false
	}
	return string(want[:len(data)]) == string(data)
}

// Journal is the append side: created fresh or resumed onto a clean prefix,
// it frames each record and fsyncs every fsyncEvery appends (and on Close),
// so a crash loses at most the last unsynced records — never the file's
// integrity.
type Journal struct {
	f          *os.File
	fsyncEvery int
	unsynced   int
	closed     bool
}

// CreateJournal starts a fresh journal at path (truncating any previous
// one) and durably writes the magic and header before returning.
func CreateJournal(path string, hdr Header, fsyncEvery int) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{f: f, fsyncEvery: resolveFsync(fsyncEvery)}
	if _, err := f.Write(journalMagic); err != nil {
		f.Close()
		return nil, err
	}
	if err := j.appendFrame(mustJSON(hdr)); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// ResumeJournal reopens path, verifies its header against want, truncates
// any torn tail and returns the journal positioned to append along with
// the already-journaled record prefix. A missing file — or one torn before
// its header frame was durable — resumes as a fresh journal with no
// records.
func ResumeJournal(path string, want Header, fsyncEvery int) (*Journal, []Record, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		j, cerr := CreateJournal(path, want, fsyncEvery)
		return j, nil, cerr
	}
	if err != nil {
		return nil, nil, err
	}
	hdr, recs, clean, err := ReadJournal(data)
	if err != nil {
		return nil, nil, err
	}
	if hdr == nil {
		j, cerr := CreateJournal(path, want, fsyncEvery)
		return j, nil, cerr
	}
	if !hdr.equal(want) {
		return nil, nil, fmt.Errorf("%w: journal is for design %q seed %d total %d",
			ErrMismatch, hdr.Design, hdr.Seed, hdr.Total)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if err := f.Truncate(int64(clean)); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(int64(clean), 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &Journal{f: f, fsyncEvery: resolveFsync(fsyncEvery)}, recs, nil
}

// Append journals one record (already in fold order — the caller is the
// ordered fold, so indexes arrive consecutive by construction).
func (j *Journal) Append(rec Record) error {
	if err := j.appendFrame(mustJSON(rec)); err != nil {
		return err
	}
	j.unsynced++
	if j.unsynced >= j.fsyncEvery {
		j.unsynced = 0
		return j.f.Sync()
	}
	return nil
}

// Close flushes the tail durably and closes the file; extra calls are
// no-ops (the engine closes explicitly to report sync errors and again via
// defer for the abort paths).
func (j *Journal) Close() error {
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

func (j *Journal) appendFrame(payload []byte) error {
	var pre [8]byte
	binary.LittleEndian.PutUint32(pre[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(pre[4:], crc32.ChecksumIEEE(payload))
	if _, err := j.f.Write(pre[:]); err != nil {
		return err
	}
	_, err := j.f.Write(payload)
	return err
}

func resolveFsync(n int) int {
	if n <= 0 {
		return 1
	}
	return n
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// Records and headers are plain data structs; this cannot fail.
		panic(err)
	}
	return b
}

// HashFaults fingerprints a fault matrix for Header.FaultsHash: FNV-1a
// over the JSON of every fault, in order.
func HashFaults(fs []faults.Fault) uint64 {
	h := fnv.New64a()
	for _, f := range fs {
		h.Write(mustJSON(f))
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}
