package flowserv

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// LoadConfig drives RunLoadTest: Clients concurrent clients each submit
// every design in Designs, Rounds times, against the server at BaseURL.
// Round 1 populates the cache; later rounds measure hits.
type LoadConfig struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Clients is the number of concurrent clients. 0 means 8.
	Clients int
	// Designs are the gen names each client submits. Empty means
	// dlx, arm and fir.
	Designs []string
	// Rounds is how many times each client cycles the design list. 0 means 2.
	Rounds int
	// Options is the flow option set submitted with every job.
	Options FlowOptions
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if len(c.Designs) == 0 {
		c.Designs = []string{"dlx", "arm", "fir"}
	}
	if c.Rounds <= 0 {
		c.Rounds = 2
	}
	return c
}

// DesignStats aggregates one design's jobs across all clients and rounds.
type DesignStats struct {
	Design      string
	Jobs        int
	CacheHits   int
	FreshTotal  time.Duration
	FreshMax    time.Duration
	CachedTotal time.Duration
	CachedMax   time.Duration
}

func (d DesignStats) freshMean() time.Duration {
	if n := d.Jobs - d.CacheHits; n > 0 {
		return d.FreshTotal / time.Duration(n)
	}
	return 0
}

func (d DesignStats) cachedMean() time.Duration {
	if d.CacheHits > 0 {
		return d.CachedTotal / time.Duration(d.CacheHits)
	}
	return 0
}

// LoadReport is the outcome of one load-test run.
type LoadReport struct {
	Clients   int
	Rounds    int
	Jobs      int
	Rejected  int // 503s (queue full / draining), retried until admitted
	Errors    []string
	Elapsed   time.Duration
	PerDesign []DesignStats
	Stats     ServerStats
}

// Render formats the report as the table EXPERIMENTS.md records.
func (r *LoadReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "load test: %d clients x %d designs x %d rounds = %d jobs in %v (%.1f jobs/s, %d retried 503s)\n",
		r.Clients, len(r.PerDesign), r.Rounds, r.Jobs, r.Elapsed.Round(time.Millisecond),
		float64(r.Jobs)/r.Elapsed.Seconds(), r.Rejected)
	fmt.Fprintf(&b, "%-8s %6s %6s %12s %12s %12s %12s\n",
		"design", "jobs", "hits", "fresh-mean", "fresh-max", "hit-mean", "hit-max")
	for _, d := range r.PerDesign {
		fmt.Fprintf(&b, "%-8s %6d %6d %12v %12v %12v %12v\n",
			d.Design, d.Jobs, d.CacheHits,
			d.freshMean().Round(time.Millisecond), d.FreshMax.Round(time.Millisecond),
			d.cachedMean().Round(time.Microsecond), d.CachedMax.Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "cache: %d entries, %d hits, %d misses\n",
		r.Stats.Cache.Entries, r.Stats.Cache.Hits, r.Stats.Cache.Misses)
	for _, e := range r.Errors {
		fmt.Fprintf(&b, "error: %s\n", e)
	}
	return b.String()
}

// RunLoadTest exercises a running server over real HTTP: every client
// submits each design Rounds times, streams the job's event feed to the
// terminal event, verifies result.json arrived, and records the
// submit-to-terminal latency split by cache outcome.
func RunLoadTest(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	cfg = cfg.withDefaults()
	rep := &LoadReport{Clients: cfg.Clients, Rounds: cfg.Rounds}
	stats := map[string]*DesignStats{}
	for _, d := range cfg.Designs {
		stats[d] = &DesignStats{Design: d}
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	hc := &http.Client{}
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < cfg.Rounds; round++ {
				for _, design := range cfg.Designs {
					took, cached, retries, err := runLoadJob(ctx, hc, cfg, design)
					mu.Lock()
					rep.Rejected += retries
					if err != nil {
						if len(rep.Errors) < 10 {
							rep.Errors = append(rep.Errors, fmt.Sprintf("%s: %v", design, err))
						}
						mu.Unlock()
						continue
					}
					ds := stats[design]
					ds.Jobs++
					if cached {
						ds.CacheHits++
						ds.CachedTotal += took
						if took > ds.CachedMax {
							ds.CachedMax = took
						}
					} else {
						ds.FreshTotal += took
						if took > ds.FreshMax {
							ds.FreshMax = took
						}
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)

	for _, d := range cfg.Designs {
		rep.PerDesign = append(rep.PerDesign, *stats[d])
		rep.Jobs += stats[d].Jobs
	}
	sort.Slice(rep.PerDesign, func(i, j int) bool {
		return rep.PerDesign[i].Design < rep.PerDesign[j].Design
	})
	if err := getJSON(ctx, hc, cfg.BaseURL+"/stats", &rep.Stats); err != nil {
		return rep, fmt.Errorf("fetching /stats: %w", err)
	}
	return rep, nil
}

// runLoadJob pushes one submission through its whole lifecycle and times
// it. Queue-full 503s back off and retry — that is the bounded queue
// working, not a failure — and the retry count is reported.
func runLoadJob(ctx context.Context, hc *http.Client, cfg LoadConfig, design string) (took time.Duration, cached bool, retries int, err error) {
	body, err := json.Marshal(JobRequest{Gen: design, Options: cfg.Options})
	if err != nil {
		return 0, false, 0, err
	}
	start := time.Now()
	var st Status
	for {
		resp, err := postJSON(ctx, hc, cfg.BaseURL+"/jobs", body)
		if err != nil {
			return 0, false, retries, err
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			resp.Body.Close()
			retries++
			select {
			case <-time.After(50 * time.Millisecond):
				continue
			case <-ctx.Done():
				return 0, false, retries, ctx.Err()
			}
		}
		decErr := json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			return 0, false, retries, fmt.Errorf("submit: HTTP %d (%s)", resp.StatusCode, st.Error)
		}
		if decErr != nil {
			return 0, false, retries, decErr
		}
		break
	}

	final, err := streamToTerminal(ctx, hc, cfg.BaseURL, st.ID)
	if err != nil {
		return 0, false, retries, err
	}
	took = time.Since(start)
	if final != StateDone {
		return took, st.Cached, retries, fmt.Errorf("job %s ended %s", st.ID, final)
	}
	// The artifacts must actually be there — a done job without its
	// summary is a server bug the load test should catch.
	var sum Summary
	if err := getJSON(ctx, hc, cfg.BaseURL+"/jobs/"+st.ID+"/artifacts/"+ArtifactResult, &sum); err != nil {
		return took, st.Cached, retries, fmt.Errorf("job %s: %w", st.ID, err)
	}
	return took, st.Cached, retries, nil
}

// streamToTerminal follows a job's NDJSON event feed and returns the
// terminal state it ends on.
func streamToTerminal(ctx context.Context, hc *http.Client, base, id string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/jobs/"+id+"/events", nil)
	if err != nil {
		return "", err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("events: HTTP %d", resp.StatusCode)
	}
	final := ""
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return "", fmt.Errorf("events: %w", err)
		}
		switch ev.Kind {
		case StateDone, StateFailed, StateCanceled:
			final = ev.Kind
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	if final == "" {
		return "", fmt.Errorf("event stream for %s ended without a terminal event", id)
	}
	return final, nil
}

func postJSON(ctx context.Context, hc *http.Client, url string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return hc.Do(req)
}

func getJSON(ctx context.Context, hc *http.Client, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("GET %s: HTTP %d: %s", url, resp.StatusCode, strings.TrimSpace(string(b)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
