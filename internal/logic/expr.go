package logic

import (
	"fmt"
	"sort"
	"strings"
)

// Op identifies the operator of an expression node.
type Op uint8

// Expression operators. Var references an input by name, Const is a literal.
const (
	OpConst Op = iota
	OpVar
	OpNot
	OpAnd
	OpOr
	OpXor
)

// Expr is a boolean expression tree over named inputs. It is the in-memory
// form of a Liberty "function" attribute and is used both for simulation and
// for structural analysis of cells.
type Expr struct {
	Op    Op
	Val   V       // OpConst
	Name  string  // OpVar
	Child []*Expr // OpNot: 1 child; OpAnd/OpOr/OpXor: >=2 children
}

// Constants and constructors.

// Const returns a constant expression.
func Const(v V) *Expr { return &Expr{Op: OpConst, Val: v} }

// Var returns a variable reference expression.
func Var(name string) *Expr { return &Expr{Op: OpVar, Name: name} }

// Not returns the negation of e.
func Not(e *Expr) *Expr { return &Expr{Op: OpNot, Child: []*Expr{e}} }

// NewAnd returns the conjunction of the given expressions.
func NewAnd(es ...*Expr) *Expr { return &Expr{Op: OpAnd, Child: es} }

// NewOr returns the disjunction of the given expressions.
func NewOr(es ...*Expr) *Expr { return &Expr{Op: OpOr, Child: es} }

// NewXor returns the exclusive-or of the given expressions.
func NewXor(es ...*Expr) *Expr { return &Expr{Op: OpXor, Child: es} }

// Eval evaluates the expression under the given environment. Missing
// variables evaluate to X.
func (e *Expr) Eval(env map[string]V) V {
	switch e.Op {
	case OpConst:
		return e.Val
	case OpVar:
		return env[e.Name]
	case OpNot:
		return e.Child[0].Eval(env).Not()
	case OpAnd:
		r := H
		for _, c := range e.Child {
			r = And(r, c.Eval(env))
			if r == L {
				return L
			}
		}
		return r
	case OpOr:
		r := L
		for _, c := range e.Child {
			r = Or(r, c.Eval(env))
			if r == H {
				return H
			}
		}
		return r
	case OpXor:
		r := L
		for _, c := range e.Child {
			r = Xor(r, c.Eval(env))
			if r == X {
				return X
			}
		}
		return r
	}
	return X
}

// Vars returns the sorted set of variable names referenced by e.
func (e *Expr) Vars() []string {
	set := map[string]bool{}
	e.collectVars(set)
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (e *Expr) collectVars(set map[string]bool) {
	if e.Op == OpVar {
		set[e.Name] = true
	}
	for _, c := range e.Child {
		c.collectVars(set)
	}
}

// String renders the expression in Liberty syntax: ! for not, * or & for and
// (we emit &), + or | for or (we emit |), ^ for xor.
func (e *Expr) String() string {
	switch e.Op {
	case OpConst:
		if e.Val == H {
			return "1"
		}
		if e.Val == L {
			return "0"
		}
		return "x"
	case OpVar:
		return e.Name
	case OpNot:
		return "!" + paren(e.Child[0], true)
	case OpAnd:
		return joinChildren(e.Child, "&")
	case OpOr:
		return joinChildren(e.Child, "|")
	case OpXor:
		return joinChildren(e.Child, "^")
	}
	return "?"
}

func joinChildren(cs []*Expr, op string) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = paren(c, false)
	}
	return strings.Join(parts, op)
}

func paren(e *Expr, unary bool) string {
	switch e.Op {
	case OpConst, OpVar:
		return e.String()
	case OpNot:
		if unary {
			return e.String()
		}
		return e.String()
	default:
		return "(" + e.String() + ")"
	}
}

// ParseExpr parses a Liberty-style boolean function string. Supported
// syntax: identifiers, constants 0/1, ! and trailing ' for negation,
// * and & for AND (also implicit by juxtaposition of parenthesized or
// identifier terms separated by whitespace), + and | for OR, ^ for XOR,
// parentheses. Precedence: ! > ^ > AND > OR (as in Liberty).
func ParseExpr(s string) (*Expr, error) {
	p := &exprParser{in: s}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("logic: trailing input %q in function %q", p.in[p.pos:], s)
	}
	return e, nil
}

// MustParseExpr is ParseExpr that panics on error; for package-level tables.
func MustParseExpr(s string) *Expr {
	e, err := ParseExpr(s)
	if err != nil {
		panic(err)
	}
	return e
}

type exprParser struct {
	in  string
	pos int
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.in) {
		return 0
	}
	return p.in[p.pos]
}

func (p *exprParser) parseOr() (*Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	kids := []*Expr{left}
	for p.peek() == '+' || p.peek() == '|' {
		p.pos++
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return NewOr(kids...), nil
}

func (p *exprParser) parseAnd() (*Expr, error) {
	left, err := p.parseXor()
	if err != nil {
		return nil, err
	}
	kids := []*Expr{left}
	for {
		c := p.peek()
		// Explicit AND operators, or implicit AND before a term start.
		if c == '*' || c == '&' {
			p.pos++
		} else if c == '(' || c == '!' || isIdentStart(c) || c == '0' || c == '1' {
			// implicit AND (Liberty allows "a b" and "a(b)")
		} else {
			break
		}
		right, err := p.parseXor()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return NewAnd(kids...), nil
}

func (p *exprParser) parseXor() (*Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	kids := []*Expr{left}
	for p.peek() == '^' {
		p.pos++
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return NewXor(kids...), nil
}

func (p *exprParser) parseUnary() (*Expr, error) {
	if p.peek() == '!' {
		p.pos++
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not(e), nil
	}
	return p.parsePrimary()
}

func (p *exprParser) parsePrimary() (*Expr, error) {
	c := p.peek()
	var e *Expr
	switch {
	case c == '(':
		p.pos++
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("logic: missing ')' in function %q", p.in)
		}
		p.pos++
		e = inner
	case c == '0':
		p.pos++
		e = Const(L)
	case c == '1':
		p.pos++
		e = Const(H)
	case isIdentStart(c):
		start := p.pos
		for p.pos < len(p.in) && isIdentPart(p.in[p.pos]) {
			p.pos++
		}
		e = Var(p.in[start:p.pos])
	default:
		return nil, fmt.Errorf("logic: unexpected character %q in function %q", c, p.in)
	}
	// Postfix ' negation (Liberty alternative to !).
	for p.pos < len(p.in) && p.in[p.pos] == '\'' {
		p.pos++
		e = Not(e)
	}
	return e, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '[' || c == ']' || c == '.'
}
