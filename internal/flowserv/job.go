package flowserv

import (
	"sync"

	"desync/internal/netlist"
)

// Job states, in lifecycle order. queued and running are transient; done,
// failed and canceled are terminal.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Event is one progress record of a job's NDJSON stream. Events carry no
// wall-clock fields: the stream of a cached job replays byte-identically to
// the fresh run it mirrors (latency lives in the client, not the record).
type Event struct {
	// Seq numbers the event within its job, from 0.
	Seq int `json:"seq"`
	// Kind is submitted|cached|attached|start|stage|gate|note|artifact|done|failed|canceled.
	Kind string `json:"kind"`
	// Stage is the flow stage for kind=stage and the gate name for kind=gate.
	Stage string `json:"stage,omitempty"`
	// Msg is human context (failure reason, artifact name, downgrade note).
	Msg string `json:"msg,omitempty"`
}

// Status is the JSON shape of GET /jobs/{id}.
type Status struct {
	ID        string   `json:"id"`
	State     string   `json:"state"`
	Design    string   `json:"design,omitempty"`
	Gen       string   `json:"gen,omitempty"`
	Cached    bool     `json:"cached"`
	Attached  string   `json:"attached,omitempty"`
	CacheKey  string   `json:"cacheKey"`
	Stage     string   `json:"stage,omitempty"`
	Error     string   `json:"error,omitempty"`
	Events    int      `json:"events"`
	Artifacts []string `json:"artifacts,omitempty"`
}

// job is one submission's full lifecycle. The mutex guards every mutable
// field; events append monotonically and changed is swapped (old one
// closed) on each append, so streamers wait without polling.
type job struct {
	id  string
	req *JobRequest
	key string

	// design is the input netlist, built at submit time to compute the
	// content hash; the flow mutates it in place when the job runs.
	design *netlist.Design

	mu       sync.Mutex
	state    string
	stage    string
	errMsg   string
	cached   bool
	attached string // leader job id when this submission rode an in-flight run
	events   []Event
	changed  chan struct{}
	done     chan struct{}
	cancelFn func()
	// artifacts: for done jobs this aliases the cache entry's map; for
	// failed jobs it holds whatever reports were produced before the gate
	// tripped, so failures stay diagnosable over HTTP.
	artifacts map[string][]byte
}

func newJob(id string, req *JobRequest, key string, d *netlist.Design) *job {
	j := &job{
		id: id, req: req, key: key, design: d,
		state:   StateQueued,
		changed: make(chan struct{}),
		done:    make(chan struct{}),
	}
	j.event("submitted", "", "")
	return j
}

// event appends one progress record. Callers hold no lock.
func (j *job) event(kind, stage, msg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.eventLocked(kind, stage, msg)
}

func (j *job) eventLocked(kind, stage, msg string) {
	j.events = append(j.events, Event{Seq: len(j.events), Kind: kind, Stage: stage, Msg: msg})
	close(j.changed)
	j.changed = make(chan struct{})
}

// eventsFrom returns the events at index >= i, the channel that closes on
// the next append, and whether the job is terminal.
func (j *job) eventsFrom(i int) (evs []Event, changed chan struct{}, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if i < len(j.events) {
		evs = append(evs, j.events[i:]...)
	}
	return evs, j.changed, terminalState(j.state)
}

func terminalState(s string) bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// setStage records the currently running flow stage.
func (j *job) setStage(stage string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.stage = stage
	j.eventLocked("stage", stage, "")
}

// start flips queued -> running and installs the in-flight cancel hook;
// it reports false when the job was already canceled while queued.
func (j *job) start(cancel func()) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.cancelFn = cancel
	j.eventLocked("start", "", "")
	return true
}

// finish moves the job to a terminal state exactly once.
func (j *job) finish(state, msg string, artifacts map[string][]byte, cached bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if terminalState(j.state) {
		return
	}
	j.state = state
	j.errMsg = msg
	j.cached = cached
	if artifacts != nil {
		j.artifacts = artifacts
	}
	kind := state
	if cached && state == StateDone {
		j.eventLocked("cached", "", "result served from the content-addressed cache")
	}
	j.eventLocked(kind, "", msg)
	j.cancelFn = nil
	close(j.done)
}

// attach marks the job a follower of the in-flight leader. Called under the
// server lock at admission, before any other goroutine can see the job.
func (j *job) attach(leaderID string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.attached = leaderID
	j.eventLocked("attached", "",
		"identical submission already in flight; attached to job "+leaderID)
}

// isTerminal reports whether the job already reached a terminal state.
func (j *job) isTerminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return terminalState(j.state)
}

// outcome snapshots a terminal job's result for followers. Only valid after
// done is closed (finish publishes every field before closing it).
func (j *job) outcome() (state, msg string, artifacts map[string][]byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.errMsg, j.artifacts
}

// cancel requests cancellation: a queued job terminates immediately, a
// running one has its flow context canceled and terminates at the next
// stage boundary. Terminal jobs are left alone. Reports whether the
// request did anything.
func (j *job) cancel(msg string) bool {
	j.mu.Lock()
	if terminalState(j.state) {
		j.mu.Unlock()
		return false
	}
	if j.state == StateQueued {
		j.state = StateCanceled
		j.errMsg = msg
		j.eventLocked(StateCanceled, "", msg)
		close(j.done)
		j.mu.Unlock()
		return true
	}
	fn := j.cancelFn
	j.mu.Unlock()
	if fn != nil {
		fn()
	}
	return true
}

// status snapshots the job for the JSON API.
func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID: j.id, State: j.state, Gen: j.req.Gen, Cached: j.cached,
		Attached: j.attached, CacheKey: j.key, Stage: j.stage,
		Error: j.errMsg, Events: len(j.events),
	}
	if j.design != nil {
		st.Design = j.design.Top.Name
	}
	st.Artifacts = artifactNames(j.artifacts)
	return st
}

// snapshotArtifacts returns the artifact map for serving; nil when none.
func (j *job) snapshotArtifacts() map[string][]byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.artifacts
}
