package mga

import (
	"context"
	"strings"
	"testing"

	"desync/internal/ctrlnet"
	"desync/internal/equiv"
	"desync/internal/expt"
	"desync/internal/netlist"
)

// These tests cross-validate the static verdicts against the exhaustive
// BFS of internal/equiv: on healthy designs the two must agree (MG-LIVE
// live <=> no EQ-DEAD reachable), and on the known-bad construction
// fixtures (the same mutations internal/equiv pins golden counterexample
// traces for) the static engine must catch the bug with no state search
// at all.

func analyzeStatic(t *testing.T, d *netlist.Design) *Report {
	t.Helper()
	cn := ctrlnet.Derive(d.Top)
	rep, err := Analyze(d.Top, cn, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func explore(t *testing.T, mod *netlist.Module) *equiv.Result {
	t.Helper()
	m, err := equiv.FromModule(mod)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Explore(context.Background(), equiv.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestStaticMatchesBFSDLX(t *testing.T) {
	f, err := expt.RunDLXFlow(expt.FlowConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rep := analyzeStatic(t, f.Desync)
	res := explore(t, f.Desync.Top)
	if res.Truncated {
		t.Fatal("BFS truncated; cross-check needs the full state space")
	}
	if got, want := rep.Live && rep.Safe, res.Violation == nil; got != want {
		t.Fatalf("static verdict %v disagrees with BFS violation=%v", got, res.Violation)
	}
	// The downgrade heuristic must cover the real state count.
	if est := StateEstimate(rep.Regions); uint64(res.States) > est {
		t.Fatalf("BFS reached %d states, above the 8^regions estimate %d", res.States, est)
	}
}

func TestStaticMatchesBFSARM(t *testing.T) {
	f, err := expt.RunARMFlow(false)
	if err != nil {
		t.Fatal(err)
	}
	rep := analyzeStatic(t, f.Desync)
	res := explore(t, f.Desync.Top)
	if res.Truncated {
		t.Fatal("BFS truncated on the single-region ARM")
	}
	if got, want := rep.Live && rep.Safe, res.Violation == nil; got != want {
		t.Fatalf("static verdict %v disagrees with BFS violation=%v", got, res.Violation)
	}
}

func TestStaticMatchesBFSFIR(t *testing.T) {
	f, err := expt.RunFIRFlow(expt.FlowConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rep := analyzeStatic(t, f.Desync)
	res := explore(t, f.Desync.Top)
	if res.Truncated {
		t.Fatal("BFS truncated on the FIR")
	}
	// The agreement claim is on the marked-graph properties: MG-LIVE
	// matches EQ-DEAD. Flow equivalence is a data-generation property
	// outside the marked graph's scope — and the FIR is exactly the case
	// where that matters: a maximally-eager environment can re-acknowledge
	// the output boundary fast enough to recapture a stale generation
	// (EQ-FLOW), which no polite 4-phase testbench triggers and no
	// structural check can see.
	deadlocked := res.Violation != nil && res.Violation.Rule == equiv.RuleDeadlock
	if rep.Live == deadlocked {
		t.Fatalf("static live=%v disagrees with BFS deadlock=%v", rep.Live, deadlocked)
	}
	if rep.PeriodNs <= 0 {
		t.Fatal("no static period bound on the live FIR")
	}
	if res.Violation != nil && res.Violation.Rule != equiv.RuleFlow {
		t.Fatalf("FIR BFS violation drifted: got %s, the known finding is %s (adversarial-env recapture)",
			res.Violation.Rule, equiv.RuleFlow)
	}
}

// mutations replicated from internal/equiv's known-bad fixtures (the
// golden-trace tests there own the BFS side; here the same bugs must fall
// to the structural checks alone).

func TestStaticCatchesDroppedAck(t *testing.T) {
	f, err := expt.RunDLXFlow(expt.FlowConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ai := f.Desync.Top.Inst("G2_Mctrl/ai")
	if ai == nil {
		t.Fatal("G2_Mctrl/ai not found")
	}
	f.Desync.Top.Disconnect(ai, "Z")

	rep := analyzeStatic(t, f.Desync)
	if rep.Live {
		t.Fatal("dropped acknowledge not caught: graph reported live")
	}
	if !hasRule(rep, RuleLive) {
		t.Fatalf("want an MG-LIVE finding, got %v", rep.Findings)
	}
}

func TestStaticCatchesSwappedPhases(t *testing.T) {
	f, err := expt.RunDLXFlow(expt.FlowConfig{})
	if err != nil {
		t.Fatal(err)
	}
	mg, sg := f.Desync.Top.Inst("G1_Mctrl/g"), f.Desync.Top.Inst("G1_Sctrl/g")
	if mg == nil || sg == nil {
		t.Fatal("G1 controller g cells not found")
	}
	mg.Cell = f.Desync.Lib.MustCell("CGSX1")
	sg.Cell = f.Desync.Lib.MustCell("CGMX1")

	rep := analyzeStatic(t, f.Desync)
	if rep.Live {
		t.Fatal("swapped reset phases not caught: the drained channel cycle went unnoticed")
	}
	if !findingContains(rep, RuleLive, "token-free cycle") {
		t.Fatalf("want a token-free-cycle MG-LIVE finding, got %v", rep.Findings)
	}
	if !findingContains(rep, RuleSafe, "reset phase inverted") {
		t.Fatalf("want the reset-phase MG-SAFE findings, got %v", rep.Findings)
	}
}

func TestStaticCatchesMissingCInput(t *testing.T) {
	f, err := expt.RunDLXFlow(expt.FlowConfig{})
	if err != nil {
		t.Fatal(err)
	}
	c0 := f.Desync.Top.Inst("G4_reqC/c0")
	if c0 == nil {
		t.Fatal("G4_reqC/c0 not found")
	}
	dup := c0.Conn("A")
	if dup == nil || c0.Conn("B") == nil {
		t.Fatal("G4_reqC/c0 legs not wired as expected")
	}
	f.Desync.Top.Disconnect(c0, "B")
	f.Desync.Top.MustConnect(c0, "B", dup)

	rep := analyzeStatic(t, f.Desync)
	if rep.Safe {
		t.Fatal("missing C-input not caught: wiring passed the data-dependency cross-check")
	}
	if !findingContains(rep, RuleSafe, "no request synchronization") {
		t.Fatalf("want the missing-rendezvous MG-SAFE finding, got %v", rep.Findings)
	}
}

func hasRule(r *Report, rule string) bool {
	for _, f := range r.Findings {
		if f.Rule == rule {
			return true
		}
	}
	return false
}

func findingContains(r *Report, rule, substr string) bool {
	for _, f := range r.Findings {
		if f.Rule == rule && strings.Contains(f.Msg, substr) {
			return true
		}
	}
	return false
}
