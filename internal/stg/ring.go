package stg

import (
	"fmt"
)

// Ring instantiates the protocol around a ring of nRegs registers — 2·nRegs
// latches alternating master (even index, transparent at reset) and slave
// (odd index, opaque at reset, holding datum r for register r). This is the
// structure a desynchronized circuit's control network enforces on its
// latch enables; checking it checks the protocol the way §2.2 requires:
// liveness (no deadlock) and flow equivalence (every latch captures the
// synchronous data sequence under every interleaving).
func (p *Protocol) Ring(nRegs int) (*Graph, error) {
	if nRegs < 2 {
		return nil, fmt.Errorf("stg: ring needs at least 2 registers")
	}
	n := 2 * nRegs
	g := NewGraph()
	open := func(i int) bool { return i%2 == 0 }
	for i := 0; i < n; i++ {
		sig := latchSignal(i)
		plus, minus := g.Ev(sig, true), g.Ev(sig, false)
		pm, mp := selfTokens(open(i))
		g.AddArc(plus, minus, pm)
		g.AddArc(minus, plus, mp)
	}
	for i := 0; i < n; i++ {
		a, b := i, (i+1)%n
		for _, c := range p.Cross {
			t, err := pairTokens(c, open(a), open(b))
			if err != nil {
				return nil, err
			}
			from := g.Ev(latchSignal(pairLatch(c.FromA, a, b)), c.FromPlus)
			to := g.Ev(latchSignal(pairLatch(c.ToA, a, b)), c.ToPlus)
			g.AddArc(from, to, t)
		}
	}
	return g, nil
}

func latchSignal(i int) string { return fmt.Sprintf("L%d", i) }

func pairLatch(isA bool, a, b int) int {
	if isA {
		return a
	}
	return b
}

// RingReport is the outcome of executing a protocol ring exhaustively.
type RingReport struct {
	Protocol  string
	States    int
	Live      bool
	FlowEquiv bool
	Violation string // first flow-equivalence violation found, if any
}

// CheckRing explores every interleaving of the ring (bounded by limit
// states) while tracking data through the latches, and reports liveness and
// flow equivalence. Data semantics: an opaque latch holds its value; a
// transparent latch shows its upstream neighbour's value; a cycle of
// transparent latches is a data race. At each closing edge the captured
// value must equal the synchronous schedule's value for that latch
// occurrence.
func (p *Protocol) CheckRing(nRegs, limit int) (RingReport, error) {
	g, err := p.Ring(nRegs)
	if err != nil {
		return RingReport{}, err
	}
	n := 2 * nRegs
	rep := RingReport{Protocol: p.Name, Live: true, FlowEquiv: true}

	// Event index -> latch index and polarity.
	evLatch := make([]int, len(g.Events))
	evPlus := make([]bool, len(g.Events))
	for i, e := range g.Events {
		var li int
		if _, err := fmt.Sscanf(e.Signal, "L%d", &li); err != nil {
			return rep, fmt.Errorf("stg: bad signal %q", e.Signal)
		}
		evLatch[i] = li
		evPlus[i] = e.Plus
	}

	type state struct {
		m    string // marking key
		held string // datum id per latch (closed) or 0xff (open)
		caps string // capture count per latch mod nRegs
	}
	// Initial data: slaves (odd) hold their register id; masters open.
	held := make([]byte, n)
	caps := make([]byte, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			held[i] = 0xff
		} else {
			held[i] = byte(i / 2)
		}
	}
	init := g.Initial()
	start := state{init.key(), string(held), string(caps)}
	seen := map[state]bool{start: true}
	queue := []state{start}

	// value resolves the datum visible at latch i's output.
	value := func(held []byte, i int) (byte, bool) {
		for hops := 0; hops <= n; hops++ {
			if held[i] != 0xff {
				return held[i], true
			}
			i = (i - 1 + n) % n
		}
		return 0, false // all-transparent cycle: data race
	}

	for len(queue) > 0 && len(seen) <= limit {
		st := queue[0]
		queue = queue[1:]
		m := Marking(st.m)
		enabled := g.EnabledEvents(m)
		if len(enabled) == 0 {
			rep.Live = false
			continue
		}
		for _, e := range enabled {
			nm := g.Fire(m, e)
			li := evLatch[e]
			h := []byte(st.held)
			c := []byte(st.caps)
			if evPlus[e] {
				h[li] = 0xff // transparent
			} else {
				v, ok := value(h, li)
				if !ok {
					if rep.FlowEquiv {
						rep.FlowEquiv = false
						rep.Violation = fmt.Sprintf("data race closing %s", g.Events[e])
					}
					continue
				}
				// Synchronous schedule: capture k of a latch in register r
				// is datum (r-k) mod nRegs.
				r := li / 2
				expect := byte(((r-int(c[li])-1)%nRegs + nRegs) % nRegs)
				if v != expect {
					if rep.FlowEquiv {
						rep.FlowEquiv = false
						rep.Violation = fmt.Sprintf("latch L%d captured %d, expected %d (capture #%d)",
							li, v, expect, c[li]+1)
					}
					continue
				}
				h[li] = v
				c[li] = byte((int(c[li]) + 1) % nRegs)
			}
			ns := state{nm.key(), string(h), string(c)}
			if !seen[ns] {
				seen[ns] = true
				queue = append(queue, ns)
			}
		}
	}
	rep.States = len(seen)
	if len(seen) > limit {
		return rep, fmt.Errorf("stg: ring state space exceeded %d states", limit)
	}
	return rep, nil
}
