package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"desync/internal/designs"
	"desync/internal/logic"
	"desync/internal/netlist"
	"desync/internal/sim"
	"desync/internal/sta"
)

// §5.2: "The automatically assigned desynchronization regions in this case
// matched the 4 pipeline stages of the processor."
func TestDLXAutoGroupingMatchesPipeline(t *testing.T) {
	lib := hs()
	d, err := designs.BuildDLX(lib, designs.TestProgram())
	if err != nil {
		t.Fatal(err)
	}
	CleanLogic(d.Top)
	res := AutoGroup(d.Top)
	if res.Groups != 4 {
		t.Fatalf("auto grouping found %d regions, want the 4 pipeline stages", res.Groups)
	}
	// Stage anchor registers must separate into four distinct regions.
	groupOf := func(inst string) int {
		in := d.Top.Inst(inst)
		if in == nil {
			t.Fatalf("instance %s missing", inst)
		}
		return in.Group
	}
	ifG := groupOf("pc_r[0]")
	idG := groupOf("idex_a_r[0]")
	exG := groupOf("exmem_res_r[0]")
	memG := groupOf("rf0_r[0]")
	seen := map[int]bool{ifG: true, idG: true, exG: true, memG: true}
	if len(seen) != 4 {
		t.Fatalf("stage anchors share regions: IF=%d ID=%d EX=%d MEM=%d", ifG, idG, exG, memG)
	}
	// Registers of the same stage stay together.
	if groupOf("ifid_instr_r[5]") != ifG {
		t.Error("IF/ID register left the IF region")
	}
	// imm bits 0..5 latch instruction bits directly (FF->FF chains that the
	// step-2 rule legitimately attaches to IF); bit 12 comes from the
	// sign-extension mux and must sit with ID.
	if groupOf("idex_imm_r[12]") != idG {
		t.Error("ID/EX register left the ID region")
	}
	if groupOf("exmem_btake_r[0]") != exG {
		t.Error("branch register left the EX region")
	}
	if groupOf("dm3_r[7]") != memG {
		t.Error("data memory left the MEM region")
	}
}

func desyncDLX(t *testing.T, muxTaps bool) (*netlist.Design, *Result, float64) {
	t.Helper()
	lib := hs()
	d, err := designs.BuildDLX(lib, designs.TestProgram())
	if err != nil {
		t.Fatal(err)
	}
	rds, err := sta.RegionDelays(context.Background(), d.Top, netlist.Worst, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	period := 0.0
	for _, rd := range rds {
		if b := rd.Budget(); b > period {
			period = b
		}
	}
	period *= 1.15
	res, err := Desynchronize(context.Background(), d, Options{Period: period, MuxTaps: muxTaps})
	if err != nil {
		t.Fatal(err)
	}
	return d, res, period
}

// The headline experiment: the desynchronized DLX runs the same program as
// the synchronous one and every register sees the same data sequence.
func TestDLXFlowEquivalence(t *testing.T) {
	lib := hs()
	prog := designs.TestProgram()

	dsync, err := designs.BuildDLX(lib, prog)
	if err != nil {
		t.Fatal(err)
	}
	ddes, res, period := desyncDLX(t, false)
	if res.Grouping.Groups != 4 {
		t.Fatalf("groups = %d, want 4", res.Grouping.Groups)
	}

	cycles := 40.0
	ss, err := sim.New(dsync.Top, sim.Config{Corner: netlist.Worst})
	if err != nil {
		t.Fatal(err)
	}
	ss.Drive("rstn", logic.L, 0)
	ss.Drive("rstn", logic.H, period*0.4)
	ss.Clock("clk", period, 0, period*cycles)
	if err := ss.RunUntilQuiescent(); err != nil {
		t.Fatal(err)
	}

	ds, err := sim.New(ddes.Top, sim.Config{Corner: netlist.Worst})
	if err != nil {
		t.Fatal(err)
	}
	ds.Drive("rstn", logic.L, 0)
	ds.Drive("rst_desync", logic.H, 0)
	ds.Drive("rstn", logic.H, 1)
	ds.Drive("rst_desync", logic.L, 2)
	if err := ds.Run(period * cycles * 2); err != nil {
		t.Fatal(err)
	}

	compared, total := 0, 0
	for name, want := range ss.Captures {
		got := ds.Captures[name+"/sl"]
		if len(got) < 10 {
			t.Fatalf("%s: only %d desync captures (deadlock?)", name, len(got))
		}
		n := len(want)
		if len(got) < n {
			n = len(got)
		}
		for k := 0; k < n; k++ {
			if got[k] != want[k] {
				t.Fatalf("%s capture %d: desync %v vs sync %v — flow equivalence broken",
					name, k, got[k], want[k])
			}
		}
		total += n
		compared++
	}
	if compared < 500 {
		t.Fatalf("compared only %d registers", compared)
	}
	t.Logf("flow equivalence verified over %d registers, %d captures", compared, total)
}

// §4.6: the controller network must be timeable by STA once the generated
// loop-breaking constraints are applied — with no arbitrary auto-breaking.
func TestControllerLoopBreaking(t *testing.T) {
	ddes, res, _ := desyncDLX(t, false)
	if _, err := sta.Build(ddes.Top, sta.Options{Corner: netlist.Worst}); err == nil {
		t.Fatal("expected timing loops without the disabled arcs")
	}
	g, err := sta.Build(ddes.Top, sta.Options{
		Corner:   netlist.Worst,
		Disabled: res.DisabledArcMap(),
	})
	if err != nil {
		t.Fatalf("constraints do not break all loops: %v", err)
	}
	if len(g.AutoBroken) != 0 {
		t.Fatal("no auto-breaking should remain")
	}
	// The request paths stay constrained: every master's g input is timed.
	r := g.Analyze()
	timed := 0
	for _, in := range ddes.Top.Insts {
		if strings.HasSuffix(in.Name, "_Mctrl/g") {
			id := g.NodeID(in, "B")
			if id >= 0 && r.MaxAt(id) > 0 {
				timed++
			}
		}
	}
	if timed == 0 {
		t.Fatal("request paths unconstrained after loop breaking")
	}
}

// The desynchronized DLX still computes: compare architectural state
// against the golden model by reading the slave latches.
func TestDesynchronizedDLXComputes(t *testing.T) {
	ddes, _, period := desyncDLX(t, false)
	ds, err := sim.New(ddes.Top, sim.Config{Corner: netlist.Worst})
	if err != nil {
		t.Fatal(err)
	}
	ds.Drive("rstn", logic.L, 0)
	ds.Drive("rst_desync", logic.H, 0)
	ds.Drive("rstn", logic.H, 1)
	ds.Drive("rst_desync", logic.L, 2)
	if err := ds.Run(period * 80); err != nil {
		t.Fatal(err)
	}
	steps := len(ds.Captures["pc_r[0]/sl"])
	if steps < 20 {
		t.Fatalf("too few cycles: %d", steps)
	}
	model := designs.NewModel(designs.TestProgram())
	model.Run(steps)
	// R7 is the loop counter; read it from the register-file nets (logic
	// cleaning removed the watch buffers and rebound the ports onto these).
	got := uint16(ds.Vector("rf7_q", 16).Uint())
	if got != model.Regs[7] {
		t.Fatalf("desynchronized DLX computed r7=%d, model %d after %d cycles", got, model.Regs[7], steps)
	}
	if got < 2 {
		t.Fatal("loop did not run")
	}
}

func TestDLXMuxedDelayElements(t *testing.T) {
	ddes, res, _ := desyncDLX(t, true)
	for i := 0; i < 3; i++ {
		if ddes.Top.Port(fmt.Sprintf("delsel[%d]", i)) == nil {
			t.Fatal("delay-selection ports missing")
		}
	}
	for g, lv := range res.DelayLevels {
		if lv < 2 {
			t.Fatalf("region %d delay levels %d", g, lv)
		}
	}
}
