package ctrlnet

import (
	"fmt"
	"strings"

	"desync/internal/handshake"
)

// This file is the single owner of the flow's "G<id>_" naming convention.
// Every name the control-network insertion creates — channel nets, controller
// gates, delay-element chains, rendezvous trees, completion networks,
// environment ports — is constructed and parsed here and nowhere else
// (repolint rule RL-CTRLNET pins the invariant). The names survive Verilog
// round trips, which is what lets Derive rebuild the IR from a re-read
// netlist with no in-memory flow state.

// Channel net suffixes, in the order the six-net channel is laid out:
// master request/ack in, master request out, slave request/ack in, slave
// request out.
var ChannelSuffixes = []string{"mri", "mai", "mro", "sri", "sai", "sro"}

// Controller gate names within one controller half, per
// handshake.AddController: the latch-enable gC, the request-out gC, the
// opened-bit, and the acknowledge AND.
const (
	GateG  = "g"
	GateRO = "ro"
	GateB  = "b"
	GateAI = "ai"
)

// Region parses the "G<id>_" prefix off a control-network name. It is the
// blessed accessor for the convention; handshake.ControlRegion is its
// implementation and must not be called from other packages.
func Region(name string) (int, bool) { return handshake.ControlRegion(name) }

// Name builds the canonical "G<id>_<suffix>" control-network name: channel
// nets (Name(g, "mri")), enable nets (Name(g, "gm")), rendezvous nets
// (Name(g, "reqjoin"), Name(g, "sao")), environment ports
// (Name(g, "env_ri")).
func Name(g int, suffix string) string { return fmt.Sprintf("G%d_%s", g, suffix) }

// CtrlPrefix returns the instance-name prefix of region g's master or slave
// controller ("G<g>_Mctrl" / "G<g>_Sctrl").
func CtrlPrefix(g int, master bool) string {
	if master {
		return Name(g, "Mctrl")
	}
	return Name(g, "Sctrl")
}

// CtrlGate returns the full instance name of one controller gate, e.g.
// CtrlGate(3, true, GateG) == "G3_Mctrl/g".
func CtrlGate(g int, master bool, gate string) string {
	return CtrlPrefix(g, master) + "/" + gate
}

// DelayPrefix returns region g's matched request delay-element instance
// prefix (without the trailing slash).
func DelayPrefix(g int) string { return Name(g, "delem") }

// MSDelayPrefix returns region g's master→slave delay-element prefix.
func MSDelayPrefix(g int) string { return Name(g, "deMS") }

// ChainStage returns the i-th AND stage (1-based) of a delay-element chain,
// e.g. ChainStage(DelayPrefix(3), 1) == "G3_delem/a1".
func ChainStage(prefix string, i int) string { return fmt.Sprintf("%s/a%d", prefix, i) }

// CTreePrefix returns region g's request or acknowledge C-Muller rendezvous
// tree instance prefix.
func CTreePrefix(g int, req bool) string {
	if req {
		return Name(g, "reqC")
	}
	return Name(g, "ackC")
}

// CdetPrefix returns region g's dual-rail completion-network prefix.
func CdetPrefix(g int) string { return Name(g, "cdet") }

// Environment handshake port names for boundary regions (§4.8): a region
// with no predecessors receives requests on env_ri and publishes its
// acknowledge on env_ai; a region with no successors receives acknowledges
// on env_ao and publishes its request on env_ro.
func EnvRequestPort(g int) string { return Name(g, "env_ri") }
func EnvReqAckPort(g int) string  { return Name(g, "env_ai") }
func EnvAckPort(g int) string     { return Name(g, "env_ao") }
func EnvReadyPort(g int) string   { return Name(g, "env_ro") }

// IsEnvRequestNet classifies a port-driven net as a request input of region
// g: the flow's exact env_ri name, or (for mutated/foreign netlists that
// keep the suffix) any _env_ri-suffixed name.
func IsEnvRequestNet(name string, g int) bool {
	return name == EnvRequestPort(g) || strings.HasSuffix(name, "_env_ri")
}

// IsDelayInstName reports whether an instance name places it inside a
// matched or master→slave delay-element chain.
func IsDelayInstName(name string) bool {
	return strings.Contains(name, "_delem/") || strings.Contains(name, "_deMS/")
}
