package designs

import (
	"fmt"
	"math/rand"

	"desync/internal/netlist"
)

// PipelineCfg parameterizes the scalable pipeline generator family. The
// three fixed case studies (DLX, ARM, FIR) top out at a few thousand
// instances; this family produces valid, lint-clean feed-forward pipelines
// anywhere from 10k to over a million instances, so every kernel in the
// flow can be pushed orders of magnitude past the paper's designs.
type PipelineCfg struct {
	// Depth is the number of register ranks (pipeline stages). Each stage
	// contributes one rank of DFFRQX1 bits plus its round-function logic.
	Depth int
	// Width is the datapath width in bits.
	Width int
	// Regions is the number of desynchronization regions the stages fold
	// into: stages are split into Regions contiguous runs, each pre-assigned
	// a region for the manual-grouping flow path (like the paper's ARM).
	// 0 means one region per stage; values above Depth clamp to Depth (a
	// stage is the finest region the feed-forward structure supports).
	Regions int
	// Fanout selects the high-fanout stress style of each stage's shared
	// mix term: "balanced" (no shared term; every net has bounded fanout),
	// "broadcast" (one parity net per stage fans out to all Width bits), or
	// "tree" (the same parity distributed through an explicit buffer tree
	// with bounded per-buffer fanout). Empty means balanced.
	Fanout string
	// Kind selects the round structure: "mix" (per-bit AND/XOR mixing, the
	// RISC-V-style deep datapath shape) or "feistel" (DES-style L/R halves
	// with a registered round-key pipeline; Width must be even). Empty
	// means mix.
	Kind string
	// Seed drives the per-stage tap selection; same seed, same netlist.
	Seed int64
}

// Preset pipeline configurations named by the related work: a deep
// RISC-V-style pipelined core shape and Serwe's 16-round DES crypto
// pipeline shape.
var pipelinePresets = map[string]PipelineCfg{
	"riscv": {Depth: 32, Width: 64, Regions: 32, Fanout: "balanced", Kind: "mix", Seed: 1},
	"des":   {Depth: 16, Width: 64, Regions: 16, Fanout: "broadcast", Kind: "feistel", Seed: 1},
}

func (c PipelineCfg) validate() error {
	if c.Depth < 1 {
		return fmt.Errorf("designs: pipeline depth %d < 1", c.Depth)
	}
	if c.Width < 8 {
		return fmt.Errorf("designs: pipeline width %d < 8", c.Width)
	}
	if c.Regions < 0 {
		return fmt.Errorf("designs: pipeline regions %d < 0", c.Regions)
	}
	switch c.Fanout {
	case "", "balanced", "broadcast", "tree":
	default:
		return fmt.Errorf("designs: pipeline fanout style %q (want balanced|broadcast|tree)", c.Fanout)
	}
	switch c.Kind {
	case "", "mix", "feistel":
	default:
		return fmt.Errorf("designs: pipeline kind %q (want mix|feistel)", c.Kind)
	}
	if c.Kind == "feistel" && (c.Width%2 != 0 || c.Width < 16) {
		return fmt.Errorf("designs: feistel pipeline needs an even width >= 16, got %d", c.Width)
	}
	return nil
}

// EstInsts estimates the instance count the configuration generates —
// good to a few percent, for sizing scaling experiments before building.
func (c PipelineCfg) EstInsts() int {
	perBit := 4 // mix: AND + 2 XOR + DFF
	if c.Kind == "feistel" {
		perBit = 4 // per width-bit averaged over both halves + key rank
	}
	return c.Depth*c.Width*perBit + 2*c.Width
}

// BuildPipeline generates a synchronous feed-forward pipeline per the
// configuration: Depth register ranks of Width bits, each preceded by a
// seeded round function, with every instance pre-assigned to one of
// Regions contiguous regions (manual-grouping flow path). Ports: clk,
// rstn, din[Width-1:0] (plus key[Width/2-1:0] for feistel), dout[Width-1:0].
//
// The output is Validate-clean and netlist-lint-clean by construction:
// every pin is connected, the graph is acyclic, and every combinational
// cone reaches the next rank or the outputs.
func BuildPipeline(lib *netlist.Library, cfg PipelineCfg) (_ *netlist.Design, err error) {
	defer recoverBuildErr("pipeline", &err)
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Regions == 0 || cfg.Regions > cfg.Depth {
		cfg.Regions = cfg.Depth
	}
	if cfg.Fanout == "" {
		cfg.Fanout = "balanced"
	}
	if cfg.Kind == "" {
		cfg.Kind = "mix"
	}
	b := NewBuilder("pipeline", lib)
	m := b.M
	clk := m.AddPort("clk", netlist.In).Net
	rstn := m.AddPort("rstn", netlist.In).Net
	din := b.InputBus("din", cfg.Width)
	rng := rand.New(rand.NewSource(cfg.Seed))

	var key Bus
	if cfg.Kind == "feistel" {
		key = b.InputBus("key", cfg.Width/2)
	}

	cur := din
	for s := 0; s < cfg.Depth; s++ {
		group := 1 + s*cfg.Regions/cfg.Depth
		start := len(m.Insts)
		var d Bus
		if cfg.Kind == "feistel" {
			d, key = b.feistelRound(cfg, s, cur, key, rng)
		} else {
			d = b.mixRound(cfg, s, cur, rng)
		}
		cur = b.RegBank(fmt.Sprintf("p%d_r", s), d, clk, rstn, fmt.Sprintf("p%d_q", s))
		if cfg.Kind == "feistel" && s < cfg.Depth-1 {
			key = b.RegBank(fmt.Sprintf("p%d_kr", s), key, clk, rstn, fmt.Sprintf("p%d_kq", s))
		}
		// The round's combinational cloud groups with the rank that captures
		// it: the grouping dependency graph derives edges from the reading
		// instance's region.
		for _, in := range m.Insts[start:] {
			in.Group = group
		}
	}

	// Drive the outputs; for feistel, fold the final round key in so the
	// key pipeline's last rank stays observable (no dead cones).
	dout := b.OutputBus("dout", cfg.Width)
	start := len(m.Insts)
	for i := range dout {
		if cfg.Kind == "feistel" {
			x := b.Xor(cur[i], key[i%len(key)])
			b.Gate("BUFX1", x, dout[i])
		} else {
			b.Gate("BUFX1", cur[i], dout[i])
		}
	}
	for _, in := range m.Insts[start:] {
		in.Group = cfg.Regions
	}

	d := &netlist.Design{Name: "pipeline", Top: m, Modules: map[string]*netlist.Module{"pipeline": m}, Lib: lib}
	return d, nil
}

// mixRound builds one RISC-V-style datapath stage: per bit, an AND of two
// neighbor taps XOR-folded with a seeded long-range tap, then combined with
// the stage's shared term per the fanout style.
func (b *Builder) mixRound(cfg PipelineCfg, stage int, cur Bus, rng *rand.Rand) Bus {
	w := cfg.Width
	tap := 2 + rng.Intn(w-3)
	shared := b.stageShared(cfg, stage, cur)
	d := make(Bus, w)
	for i := 0; i < w; i++ {
		t1 := b.And(cur[i], cur[(i+1)%w])
		t2 := b.Xor(t1, cur[(i+tap)%w])
		if shared != nil {
			d[i] = b.Xor(t2, shared[i%len(shared)])
		} else {
			d[i] = b.Xor(t2, cur[(i+5)%w])
		}
	}
	return d
}

// feistelRound builds one DES-style stage on L/R halves: L' = R and
// R' = L XOR f(R, K), where f mixes each R bit with its round-key bit and a
// seeded neighbor tap. Returns the new state and the rotated round key.
func (b *Builder) feistelRound(cfg PipelineCfg, stage int, cur, key Bus, rng *rand.Rand) (Bus, Bus) {
	h := cfg.Width / 2
	l, r := cur[:h], cur[h:]
	tap := 1 + rng.Intn(h-1)
	shared := b.stageShared(cfg, stage, r)
	d := make(Bus, cfg.Width)
	for j := 0; j < h; j++ {
		f := b.Xor(b.And(r[j], key[j]), r[(j+tap)%h])
		if shared != nil {
			f = b.Xor(f, shared[j%len(shared)])
		}
		d[j] = r[j] // L' = R: pure wiring into the next rank
		d[h+j] = b.Xor(l[j], f)
	}
	// Rotate the key by one for the next round (wire permutation, no gates).
	rot := make(Bus, h)
	for j := 0; j < h; j++ {
		rot[j] = key[(j+1)%h]
	}
	return d, rot
}

// stageShared builds the stage's shared high-fanout term per the fanout
// style: nil for balanced, a single parity net for broadcast, or the
// parity net distributed through a max-fanout-8 buffer tree.
func (b *Builder) stageShared(cfg PipelineCfg, stage int, src Bus) Bus {
	switch cfg.Fanout {
	case "broadcast":
		p := b.tree(src[:8], b.Xor)
		return Bus{p}
	case "tree":
		p := b.tree(src[:8], b.Xor)
		leaves := (cfg.Width + 7) / 8
		out := make(Bus, leaves)
		for i := range out {
			z := b.fresh()
			b.Gate("BUFX1", p, z)
			out[i] = z
		}
		return out
	default:
		return nil
	}
}
