package designs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"desync/internal/netlist"
	"desync/internal/stdcells"
)

// ParseSpec builds a generated design from a "-gen" spec string, the one
// parser every CLI (drdesync, drlint, drequiv, drsweep, drserve) shares in
// place of hand-rolled dlx|arm|fir switches.
//
// Grammar:
//
//	dlx | arm | fir                      fixed case studies
//	pipeline[:k=v,...]                   parametric pipeline
//	riscv[:k=v,...] | des[:k=v,...]      pipeline presets with overrides
//
// Pipeline keys: depth, width, regions, seed (integers), fanout
// (balanced|broadcast|tree), kind (mix|feistel). Example:
//
//	pipeline:depth=32,width=64,regions=100
//
// A nil lib selects each generator's default library variant (Low-Leakage
// for arm, High-Speed otherwise, matching the paper's case studies).
func ParseSpec(spec string, lib *netlist.Library) (*netlist.Design, error) {
	name, params, _ := strings.Cut(spec, ":")
	if lib == nil {
		lib = stdcells.New(DefaultLibVariant(name))
	}
	switch name {
	case "dlx":
		if params != "" {
			return nil, fmt.Errorf("designs: %s takes no parameters (got %q)", name, params)
		}
		return BuildDLX(lib, TestProgram())
	case "arm":
		if params != "" {
			return nil, fmt.Errorf("designs: %s takes no parameters (got %q)", name, params)
		}
		return BuildARMLike(lib, 42)
	case "fir":
		if params != "" {
			return nil, fmt.Errorf("designs: %s takes no parameters (got %q)", name, params)
		}
		return BuildFIR(lib)
	case "pipeline", "riscv", "des":
		cfg, err := ParsePipelineSpec(spec)
		if err != nil {
			return nil, err
		}
		return BuildPipeline(lib, cfg)
	default:
		return nil, fmt.Errorf("designs: unknown generator %q (want %s)", name, strings.Join(SpecNames(), "|"))
	}
}

// ParsePipelineSpec parses the pipeline portion of the grammar into a
// configuration without building it (the job server validates requests and
// sizes budgets before running the generator).
func ParsePipelineSpec(spec string) (PipelineCfg, error) {
	name, params, _ := strings.Cut(spec, ":")
	cfg, preset := pipelinePresets[name]
	if !preset {
		if name != "pipeline" {
			return PipelineCfg{}, fmt.Errorf("designs: %q is not a pipeline generator", name)
		}
		cfg = PipelineCfg{Depth: 8, Width: 32}
	}
	if params == "" {
		return cfg, cfg.validate()
	}
	for _, kv := range strings.Split(params, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return PipelineCfg{}, fmt.Errorf("designs: malformed pipeline parameter %q (want key=value)", kv)
		}
		switch k {
		case "fanout":
			cfg.Fanout = v
		case "kind":
			cfg.Kind = v
		case "depth", "width", "regions", "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return PipelineCfg{}, fmt.Errorf("designs: pipeline parameter %s=%q is not an integer", k, v)
			}
			switch k {
			case "depth":
				cfg.Depth = int(n)
			case "width":
				cfg.Width = int(n)
			case "regions":
				cfg.Regions = int(n)
			case "seed":
				cfg.Seed = n
			}
		default:
			return PipelineCfg{}, fmt.Errorf("designs: unknown pipeline parameter %q (want depth|width|regions|seed|fanout|kind)", k)
		}
	}
	return cfg, cfg.validate()
}

// SpecNames lists the generator names ParseSpec accepts, sorted, for CLI
// usage strings and request validation.
func SpecNames() []string {
	names := []string{"dlx", "arm", "fir", "pipeline"}
	for name := range pipelinePresets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ValidSpec reports whether the spec parses (without building anything);
// request validators use it to reject bad submissions early.
func ValidSpec(spec string) bool {
	name, _, _ := strings.Cut(spec, ":")
	switch name {
	case "dlx", "arm", "fir":
		return strings.IndexByte(spec, ':') < 0
	case "pipeline", "riscv", "des":
		_, err := ParsePipelineSpec(spec)
		return err == nil
	default:
		return false
	}
}

// PreGrouped reports whether the spec's generator pre-assigns
// desynchronization regions on its instances (Inst.Group), so flows over it
// must run with manual grouping instead of the automatic algorithm — the
// paper's ARM path (§5.3), which the pipeline family also takes.
func PreGrouped(spec string) bool {
	name, _, _ := strings.Cut(spec, ":")
	switch name {
	case "arm", "pipeline", "riscv", "des":
		return true
	}
	return false
}

// DefaultLibVariant returns the library variant a generator's case study
// used in the paper: the ARM was the Low-Leakage implementation, everything
// else High-Speed.
func DefaultLibVariant(spec string) stdcells.Variant {
	name, _, _ := strings.Cut(spec, ":")
	if name == "arm" {
		return stdcells.LowLeakage
	}
	return stdcells.HighSpeed
}
