package designs

// Model is a cycle-accurate golden reference of the DLX microarchitecture,
// used to verify the gate-level generator: same four stages, same latencies,
// same lack of forwarding.
type Model struct {
	PC    uint16
	Regs  [8]uint16
	DMem  [16]uint16
	Prog  []uint16
	ifid  mIFID
	idex  mIDEX
	exmem mEXMEM
	// Trace records the PC value after each Step.
	Trace []uint16
}

type mIFID struct {
	instr, pc1 uint16
}

type mIDEX struct {
	op, rd       uint16
	a, b, imm, s uint16
	pc1          uint16
}

type mEXMEM struct {
	op, rd, res, s uint16
	btake          bool
	btgt           uint16
}

// NewModel returns a reset-state model of the given program.
func NewModel(prog []uint16) *Model { return &Model{Prog: prog} }

func sext6(v uint16) uint16 {
	v &= 0x3f
	if v&0x20 != 0 {
		v |= 0xffc0
	}
	return v
}

func sext9(v uint16) uint16 {
	v &= 0x1ff
	if v&0x100 != 0 {
		v |= 0xfe00
	}
	return v
}

// Step advances one clock cycle: every stage computes from the current
// state, then all registers commit, exactly as the flip-flops do.
func (m *Model) Step() {
	// IF
	var instr uint16
	if int(m.PC) < len(m.Prog) {
		instr = m.Prog[m.PC]
	}
	pc1 := (m.PC + 1) & (1<<PCBits - 1)
	nextPC := pc1
	if m.exmem.btake {
		nextPC = m.exmem.btgt & (1<<PCBits - 1)
	}
	nextIFID := mIFID{instr: instr, pc1: pc1}

	// ID
	fi := m.ifid.instr
	op := fi >> 12
	rd := fi >> 9 & 7
	rs1 := fi >> 6 & 7
	rs2 := fi >> 3 & 7
	var imm uint16
	if op == OpJMP {
		imm = sext9(fi)
	} else {
		imm = sext6(fi)
	}
	nextIDEX := mIDEX{
		op: op, rd: rd,
		a: m.Regs[rs1], b: m.Regs[rs2], s: m.Regs[rd],
		imm: imm, pc1: m.ifid.pc1,
	}

	// EX
	x := m.idex
	opB := x.b
	switch x.op {
	case OpADDI, OpLW, OpSW:
		opB = x.imm
	}
	res := x.a + opB
	switch x.op {
	case OpSUB:
		res = x.a - x.b
	case OpAND:
		res = x.a & x.b
	case OpOR:
		res = x.a | x.b
	case OpXOR:
		res = x.a ^ x.b
	case OpLI:
		res = x.imm
	}
	btake := x.op == OpJMP || (x.op == OpBEQZ && x.a == 0)
	btgt := (x.pc1 + x.imm) & (1<<PCBits - 1)
	nextEXMEM := mEXMEM{op: x.op, rd: x.rd, res: res, s: x.s, btake: btake, btgt: btgt}

	// MEM (+WB), reading memory before this cycle's write commits.
	e := m.exmem
	addr := e.res & 15
	rdata := m.DMem[addr]
	wb := e.res
	if e.op == OpLW {
		wb = rdata
	}
	wen := false
	switch e.op {
	case OpADD, OpSUB, OpAND, OpOR, OpXOR, OpADDI, OpLW, OpLI:
		wen = true
	}

	// Commit.
	if e.op == OpSW {
		m.DMem[addr] = e.s
	}
	if wen {
		m.Regs[e.rd] = wb
	}
	m.PC = nextPC
	m.ifid = nextIFID
	m.idex = nextIDEX
	m.exmem = nextEXMEM
	m.Trace = append(m.Trace, m.PC)
}

// Run steps n cycles.
func (m *Model) Run(n int) {
	for i := 0; i < n; i++ {
		m.Step()
	}
}

// Asm helpers for readable test programs.

// Nop3 is the three delay slots the schedule requires after control flow
// and between def and use.
func Nop3() []uint16 {
	n := Encode(OpNOP, 0, 0, 0, 0)
	return []uint16{n, n, n}
}

// Program concatenates instruction slices.
func Program(parts ...[]uint16) []uint16 {
	var out []uint16
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// I wraps a single instruction as a slice for Program.
func I(op, rd, rs1, rs2, imm int) []uint16 {
	return []uint16{Encode(op, rd, rs1, rs2, imm)}
}

// TestProgram exercises every opcode: arithmetic and logic into registers,
// a store/load round trip, a taken branch and a jump loop that keeps
// incrementing R7 — giving the timing and power runs sustained activity.
func TestProgram() []uint16 {
	return Program(
		I(OpLI, 1, 0, 0, 5), // r1 = 5
		I(OpLI, 2, 0, 0, 7), // r2 = 7
		I(OpLI, 7, 0, 0, 0), // r7 = 0
		Nop3(),
		I(OpADD, 3, 1, 2, 0), // r3 = 12
		I(OpSUB, 4, 2, 1, 0), // r4 = 2
		Nop3(),
		I(OpAND, 5, 3, 2, 0), // r5 = 12&7 = 4
		I(OpOR, 6, 3, 1, 0),  // r6 = 12|5 = 13
		I(OpXOR, 4, 4, 2, 0), // r4 = 2^7 = 5
		Nop3(),
		I(OpSW, 3, 0, 0, 2),   // dmem[2] = r3 (=12)
		I(OpADDI, 5, 5, 0, 9), // r5 = 13
		Nop3(),
		I(OpLW, 6, 0, 0, 2), // r6 = dmem[2] = 12
		Nop3(),
		I(OpBEQZ, 0, 1, 0, 2), // r1 != 0: not taken
		I(OpADDI, 7, 7, 0, 1), // r7++ (executes)
		Nop3(),
		// loop: r7++ ; jmp loop (with delay slots as NOPs)
		I(OpADDI, 7, 7, 0, 1), // loop body at this PC
		I(OpJMP, 0, 0, 0, -2), // back to the ADDI (pc1 + (-4))
		Nop3(),
	)
}

// FibProgram computes Fibonacci numbers in a loop: r1,r2 hold consecutive
// terms, r3 counts iterations, each term is stored to memory at the counter
// address. A second, independent validation program for the gate-level DLX.
func FibProgram() []uint16 {
	return Program(
		I(OpLI, 1, 0, 0, 0), // r1 = F(0) = 0
		I(OpLI, 2, 0, 0, 1), // r2 = F(1) = 1
		I(OpLI, 3, 0, 0, 0), // r3 = counter
		Nop3(),
		// loop:
		I(OpADD, 4, 1, 2, 0),  // r4 = r1 + r2
		I(OpADDI, 3, 3, 0, 1), // r3++
		Nop3(),
		I(OpADD, 1, 2, 0, 0), // r1 = r2 (r0 stays 0)
		I(OpADD, 2, 4, 0, 0), // r2 = r4
		I(OpSW, 4, 3, 0, 0),  // dmem[r3 & 15] = r4
		Nop3(),
		I(OpJMP, 0, 0, 0, -12), // back to the loop head (ADD r4)
		Nop3(),
	)
}
