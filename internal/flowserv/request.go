package flowserv

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"desync/internal/core"
	"desync/internal/designs"
	"desync/internal/netlist"
	"desync/internal/stdcells"
	"desync/internal/verilog"
)

// cacheKeyVersion is folded into every cache key so a change to the flow's
// canonicalization (new option, different defaults) invalidates old entries
// instead of serving results computed under different semantics. v2: the
// backend/mode pair replaced the cdet boolean and the canonical form now
// spells out the backend defaults.
const cacheKeyVersion = "drserve-cache-v2"

// FlowOptions is the client-facing option set of one job, a JSON mirror of
// core.Options plus the optional verification gates. Zero values mean the
// flow defaults (backend desync, mode matched, margin 1.15); Canonicalize
// makes the defaults explicit so equivalent requests share one cache entry.
type FlowOptions struct {
	// Backend selects the clocking-conversion backend: "desync" (the
	// default, the paper's handshake control network) or any other backend
	// registered with the core flow, e.g. "twophase".
	Backend string `json:"backend,omitempty"`
	// Mode selects a backend sub-strategy. For the desync backend:
	// "matched" (default) or "cdet" (dual-rail completion detection,
	// §2.4.4). Backends without modes reject a non-empty value.
	Mode string `json:"mode,omitempty"`
	// Period is the original clock period in ns; 0 derives it from STA over
	// the input design (worst launch-to-capture budget x 1.05).
	Period float64 `json:"period,omitempty"`
	// Margin scales the matched delay elements; 0 means 1.15.
	Margin float64 `json:"margin,omitempty"`
	// MuxTaps builds 8-tap multiplexed delay elements.
	MuxTaps bool `json:"mux,omitempty"`
	// ManualGroups keeps the Group fields already on the instances.
	ManualGroups bool `json:"manualGroups,omitempty"`
	// SkipClean disables buffer/inverter-pair removal.
	SkipClean bool `json:"skipClean,omitempty"`
	// Equiv runs the exhaustive marked-graph gate post-export (skipped with
	// an explicit note when the state estimate exceeds the budget).
	Equiv bool `json:"equiv,omitempty"`
	// EquivMaxStates bounds the equiv gate; 0 means the engine default.
	EquivMaxStates int `json:"equivMaxStates,omitempty"`
	// Faults runs the fault-injection campaign and attaches its report.
	Faults bool `json:"faults,omitempty"`
	// FaultCycles is the campaign run length in clock periods; 0 means 12.
	FaultCycles int `json:"faultCycles,omitempty"`
	// FaultsPerRegion is the delay faults injected per region; 0 means 2.
	FaultsPerRegion int `json:"faultsPerRegion,omitempty"`
	// Parallelism asks for a per-job worker bound for the parallel kernels.
	// The server clamps it to its own per-job budget. NOT part of the cache
	// key: every kernel's output is identical at any worker count.
	Parallelism int `json:"j,omitempty"`
}

// JobRequest is the body of POST /jobs: exactly one of Gen (a built-in
// case-study generator) or Verilog (an uploaded gate-level netlist).
type JobRequest struct {
	// Gen names a built-in design in the designs.ParseSpec grammar: a fixed
	// case study (dlx, arm, fir) or a parametric spec such as
	// "pipeline:depth=32,width=64,regions=100".
	Gen string `json:"gen,omitempty"`
	// Verilog is an uploaded gate-level netlist source.
	Verilog string `json:"verilog,omitempty"`
	// Top selects the top module of an upload (default: auto-detect).
	Top string `json:"top,omitempty"`
	// Lib is the technology library variant: HS or LL. Defaults to HS, or
	// LL for gen=arm (the paper's ARM uses the low-leakage library).
	Lib string `json:"lib,omitempty"`
	// Options configures the flow and its gates.
	Options FlowOptions `json:"options"`
}

// coreOptions maps the JSON mirror's flow knobs onto the flow's own option
// type. The gate knobs (equiv, faults) are server-side and stay behind.
func (o FlowOptions) coreOptions() core.Options {
	return core.Options{
		Backend:      o.Backend,
		Mode:         core.Mode(o.Mode),
		Period:       o.Period,
		Margin:       o.Margin,
		MuxTaps:      o.MuxTaps,
		ManualGroups: o.ManualGroups,
		SkipClean:    o.SkipClean,
		Parallelism:  o.Parallelism,
	}
}

// Canonicalize returns the options with every documented default applied
// and the parallelism request removed — the form that is hashed into the
// cache key, so that {} and {"margin":1.15} address the same entry. The
// flow knobs defer to core.Options.Canonicalize — defaulting is defined
// once, there — so the server can never hash a different canonical form
// than the flow runs; an error names an unknown backend or mode.
func (o FlowOptions) Canonicalize() (FlowOptions, error) {
	co, err := o.coreOptions().Canonicalize()
	if err != nil {
		return o, err
	}
	c := o
	c.Backend = co.Backend
	c.Mode = string(co.Mode)
	c.Margin = co.Margin
	c.MuxTaps = co.MuxTaps
	if c.Backend != core.BackendDesync {
		// The equiv and faults gates model the handshake control network, so
		// under any other backend they are inert: zero them so a request that
		// asked anyway shares the cache entry of one that did not. The run
		// reports the drop with a note event.
		c.Equiv = false
		c.Faults = false
	}
	if c.FaultCycles == 0 {
		c.FaultCycles = 12
	}
	if c.FaultsPerRegion == 0 {
		c.FaultsPerRegion = 2
	}
	if !c.Faults {
		// Fault knobs are inert without the campaign; normalize them away
		// so they cannot split cache entries.
		c.FaultCycles = 0
		c.FaultsPerRegion = 0
	}
	if !c.Equiv {
		c.EquivMaxStates = 0
	}
	c.Parallelism = 0
	return c, nil
}

// validate rejects malformed requests before any work happens.
func (r *JobRequest) validate() error {
	if (r.Gen == "") == (r.Verilog == "") {
		return fmt.Errorf("exactly one of gen and verilog is required")
	}
	if r.Gen != "" && !designs.ValidSpec(r.Gen) {
		return fmt.Errorf("unknown gen design %q (want %s, with pipeline key=value params)", r.Gen, strings.Join(designs.SpecNames(), "|"))
	}
	switch r.Lib {
	case "", "HS", "LL":
	default:
		return fmt.Errorf("unknown library variant %q (want HS or LL)", r.Lib)
	}
	if r.Gen != "" && r.Top != "" {
		return fmt.Errorf("top applies to uploads only")
	}
	// Backend and mode are validated by the flow's own canonicalization, so
	// an unknown pair is rejected at submit time, not mid-run.
	if _, err := r.Options.Canonicalize(); err != nil {
		return fmt.Errorf("options: %w", err)
	}
	return nil
}

// libVariant resolves the request's library variant with the per-design
// default (ARM is an LL design in the paper).
func (r *JobRequest) libVariant() stdcells.Variant {
	if r.Lib != "" {
		return stdcells.Variant(r.Lib)
	}
	if r.Gen != "" {
		return designs.DefaultLibVariant(r.Gen)
	}
	return stdcells.HighSpeed
}

// buildDesign constructs the input design: a generator build or an upload
// parse. For pre-grouped generators the request's ManualGroups is forced
// on — the generator bakes the region assignment into the instances
// (§5.3) — and the canonical options reflect that, so the forced and the
// explicit form share a cache entry.
func (r *JobRequest) buildDesign() (*netlist.Design, error) {
	lib := stdcells.New(r.libVariant())
	if r.Gen != "" {
		return designs.ParseSpec(r.Gen, lib)
	}
	return verilog.Read(r.Verilog, lib, r.Top)
}

// normalize applies cross-field defaults that depend on the design choice.
func (r *JobRequest) normalize() {
	if designs.PreGrouped(r.Gen) {
		r.Options.ManualGroups = true
	}
	if r.Lib == "" {
		r.Lib = string(r.libVariant())
	}
}

// cacheKey is the content address of this request's result: a digest over
// the canonical netlist content hash and the canonicalized options. Two
// requests with byte-different but content-identical inputs (same design
// built twice, an upload re-serialized with reordered declarations) land on
// the same entry; any change that can alter the flow's output — netlist
// content, library variant, any canonical option — lands on a new one.
func cacheKey(d *netlist.Design, opts FlowOptions) (string, error) {
	canon, err := opts.Canonicalize()
	if err != nil {
		return "", err
	}
	oj, err := json.Marshal(canon)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n%s\n", cacheKeyVersion, d.ContentHash(), oj)
	return hex.EncodeToString(h.Sum(nil)), nil
}
