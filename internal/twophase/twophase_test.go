package twophase_test

import (
	"context"
	"strings"
	"testing"

	"desync/internal/core"
	"desync/internal/ctrlnet"
	"desync/internal/designs"
	"desync/internal/lint"
	"desync/internal/netlist"
	"desync/internal/stdcells"
	"desync/internal/twophase"
	"desync/internal/verilog"
)

func convert(t *testing.T, spec string) (*netlist.Design, *core.Result) {
	t.Helper()
	d, err := designs.ParseSpec(spec, nil)
	if err != nil {
		t.Fatalf("ParseSpec(%s): %v", spec, err)
	}
	res, err := core.Convert(context.Background(), d, core.Options{
		Backend:      core.BackendTwoPhase,
		ManualGroups: designs.PreGrouped(spec),
	})
	if err != nil {
		t.Fatalf("Convert(%s, twophase): %v", spec, err)
	}
	return d, res
}

func TestConvertDLX(t *testing.T) {
	d, res := convert(t, "dlx")

	if res.Backend != core.BackendTwoPhase {
		t.Errorf("Result.Backend = %q, want %q", res.Backend, core.BackendTwoPhase)
	}
	tp, ok := res.BackendResult.(*twophase.Result)
	if !ok {
		t.Fatalf("BackendResult is %T, want *twophase.Result", res.BackendResult)
	}

	// The conversion removed every flip-flop and the clock port.
	for _, in := range d.Top.Insts {
		if in.Cell != nil && in.Cell.Kind == netlist.KindFF {
			t.Fatalf("flip-flop %s survived the twophase conversion", in.Name)
		}
	}
	if got := d.Top.Port("clk"); got != nil {
		t.Errorf("clock port survived the conversion")
	}
	if d.Top.Port(twophase.RstPortName) == nil {
		t.Errorf("no %s port on the converted design", twophase.RstPortName)
	}

	// The generator period covers the worst region budget.
	maxBudget := 0.0
	for _, rd := range res.RegionDelays {
		if b := rd.Budget(); b > maxBudget {
			maxBudget = b
		}
	}
	if tp.Period < maxBudget {
		t.Errorf("generator period %.3f < worst region budget %.3f", tp.Period, maxBudget)
	}
	if tp.NonOverlap <= 0 || tp.HalfPeriod < 2*tp.NonOverlap {
		t.Errorf("non-overlap %.3f does not fit the half-period %.3f", tp.NonOverlap, tp.HalfPeriod)
	}

	// Every region's enable pair is driven from the phase roots.
	if len(tp.Regions) == 0 || len(tp.Regions) != res.Grouping.Groups {
		t.Errorf("distribution covers regions %v, grouping made %d", tp.Regions, res.Grouping.Groups)
	}
	for _, g := range tp.Regions {
		en := res.Substitution.Enables[g]
		for _, n := range []*netlist.Net{en.Master, en.Slave} {
			if n.Driver.Inst == nil || n.Driver.Inst.Cell.Name != "CLKBUFX2" {
				t.Errorf("region %d enable %s not driven by a distribution buffer", g, n.Name)
			}
		}
	}

	// Constraints: both phase clocks, non-overlapping waveforms, and the
	// three loop-breaking arcs.
	if len(res.Constraints.Clocks) != 2 {
		t.Fatalf("got %d clocks, want Phi1 and Phi2", len(res.Constraints.Clocks))
	}
	phi1, phi2 := res.Constraints.Clocks[0], res.Constraints.Clocks[1]
	if phi1.Name != "Phi1" || phi2.Name != "Phi2" {
		t.Fatalf("clock names %s/%s", phi1.Name, phi2.Name)
	}
	if phi1.Waveform[1] >= phi2.Waveform[0] {
		t.Errorf("Phi1 falls at %.3f, Phi2 rises at %.3f: phases overlap",
			phi1.Waveform[1], phi2.Waveform[0])
	}
	if phi2.Waveform[1] >= phi2.Period {
		t.Errorf("Phi2 falls at %.3f past the period %.3f", phi2.Waveform[1], phi2.Period)
	}
	if len(res.Constraints.Disabled) != 3 {
		t.Errorf("got %d disabled arcs, want 3 (ring + both cross-couplings)", len(res.Constraints.Disabled))
	}
	text := res.Constraints.Write()
	for _, want := range []string{"Phi1", "Phi2", ctrlnet.TPSrcName, "set_size_only"} {
		if !strings.Contains(text, want) {
			t.Errorf("SDC text lacks %q", want)
		}
	}
}

// TestCaseStudiesLintClean runs the backend over every case study (DLX,
// the pre-grouped LL-library ARM, FIR) plus a parametric pipeline spec and
// requires the full TP-* lint family to pass against the generated
// constraints — the backend's acceptance bar.
func TestCaseStudiesLintClean(t *testing.T) {
	for _, spec := range []string{"dlx", "arm", "fir", "pipeline:depth=4,width=8,regions=6"} {
		d, res := convert(t, spec)
		rep := lint.Check(d.Top, lint.Options{TwoPhase: true, Constraints: res.Constraints})
		if n := rep.Errors(); n > 0 {
			t.Errorf("%s: %d lint errors, first: %s", spec, n, rep.Findings[0])
		}
		tp := res.BackendResult.(*twophase.Result)
		if len(tp.Regions) == 0 || tp.Period <= 0 {
			t.Errorf("%s: degenerate result: regions %v, period %.3f", spec, tp.Regions, tp.Period)
		}
	}
}

func TestRoundTripDerive(t *testing.T) {
	d, res := convert(t, "dlx")
	tp := res.BackendResult.(*twophase.Result)

	// Write the converted design out and read it back: Derive must rebuild
	// the same structure from names and connectivity alone.
	lib := stdcells.New(stdcells.HighSpeed)
	back, err := verilog.Read(verilog.Write(d), lib, d.Top.Name)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	n := twophase.Derive(back.Top)
	if diffs := twophase.Diff(tp.Claim, n); len(diffs) > 0 {
		t.Fatalf("round-tripped netlist disagrees with the claim: %v", diffs)
	}
	if !n.RingClosed || !n.CrossCoupled {
		t.Errorf("derived topology incomplete: ring %v, cross-coupling %v", n.RingClosed, n.CrossCoupled)
	}
}

func TestDeriveCatchesMutations(t *testing.T) {
	d, res := convert(t, "fir")
	tp := res.BackendResult.(*twophase.Result)

	// Cutting the ring feedback must surface as a cross-check mismatch.
	src := d.Top.Inst(ctrlnet.TPSrcName)
	if src == nil {
		t.Fatal("no generator source NOR")
	}
	d.Top.Disconnect(src, "B")
	n := twophase.Derive(d.Top)
	if n.RingClosed {
		t.Errorf("ring reported closed after cutting the feedback")
	}
	if diffs := twophase.Diff(tp.Claim, n); len(diffs) == 0 {
		t.Errorf("Diff missed the cut ring")
	}
}

func TestModeRejected(t *testing.T) {
	d, err := designs.ParseSpec("fir", nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.Convert(context.Background(), d, core.Options{
		Backend: core.BackendTwoPhase,
		Mode:    core.ModeCompletion,
	})
	if err == nil || !strings.Contains(err.Error(), "no modes") {
		t.Fatalf("mode on twophase not rejected: %v", err)
	}
	if got := core.StageOf(err); got != core.StageImport {
		t.Errorf("mode rejection staged as %q, want %q", got, core.StageImport)
	}
}

func TestCanonicalizeZeroesDesyncKnobs(t *testing.T) {
	o, err := core.Options{
		Backend:          core.BackendTwoPhase,
		MuxTaps:          true,
		TapScales:        []float64{1, 2},
		CompletionMargin: 5,
	}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if o.MuxTaps || o.TapScales != nil || o.CompletionMargin != 0 {
		t.Errorf("desync-only knobs survived canonicalization: %+v", o)
	}
	if o.Margin != 1.15 {
		t.Errorf("Margin = %v, want the 1.15 default", o.Margin)
	}
}
