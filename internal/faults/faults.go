// Package faults runs fault-injection campaigns against a desynchronized
// design. The paper's central claim — the circuit stays live and
// flow-equivalent because the matched delay elements track the logic and
// the controllers are hazard-free (§2.5, §4.6) — is only believable if the
// checkers verifying it actually fire when the design is broken. A campaign
// injects that breakage deliberately: per-instance delay faults that push a
// gate past its region's matched element, stuck-at faults on the handshake
// control nets (requests, acknowledges, latch enables), and glitches; each
// injected fault is then classified as detected (flow-equivalence mismatch,
// liveness loss, watchdog trip, or simulator abort) or escaped.
package faults

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"desync/internal/logic"
	"desync/internal/sim"
)

// Class is the kind of physical defect a Fault models.
type Class string

const (
	// ClassDelay inflates one instance's delay past its region's matched
	// delay element (an under-margin fault: variability the element no
	// longer covers, §2.5).
	ClassDelay Class = "delay"
	// ClassStuckAt pins a control net (request, acknowledge or latch
	// enable) to a constant.
	ClassStuckAt Class = "stuck-at"
	// ClassGlitch forces a short pulse onto a control net mid-run (a hazard
	// reaching the handshake network, §4.6).
	ClassGlitch Class = "glitch"
)

// Fault is one injectable defect.
type Fault struct {
	Class Class `json:"class"`
	// Inst names the faulted instance (delay faults).
	Inst string `json:"inst,omitempty"`
	// Factor multiplies the instance's DelayFactor (delay faults).
	Factor float64 `json:"factor,omitempty"`
	// Net names the faulted net (stuck-at and glitch faults).
	Net string `json:"net,omitempty"`
	// Value is the stuck/glitch level.
	Value logic.V `json:"value,omitempty"`
	// At and Width place a glitch pulse in time (ns).
	At    float64 `json:"at,omitempty"`
	Width float64 `json:"width,omitempty"`
}

// String renders a compact fault label for reports.
func (f Fault) String() string {
	switch f.Class {
	case ClassDelay:
		return fmt.Sprintf("delay %s x%.0f", f.Inst, f.Factor)
	case ClassStuckAt:
		return fmt.Sprintf("stuck %s@%v", f.Net, f.Value)
	case ClassGlitch:
		return fmt.Sprintf("glitch %s=%v@%.2f+%.2f", f.Net, f.Value, f.At, f.Width)
	}
	return "unknown fault"
}

// Detection says which checker caught a fault.
type Detection string

const (
	// NotDetected marks an escaped fault.
	NotDetected Detection = ""
	// ByFlowMismatch: a register's capture sequence diverged from the
	// unfaulted run — flow equivalence (§2.1) is broken.
	ByFlowMismatch Detection = "flow-mismatch"
	// ByLiveness: a register captured far fewer values than the unfaulted
	// run — the handshake network (partially) stalled.
	ByLiveness Detection = "liveness-loss"
	// ByWatchdog: a runtime guard tripped (deadlock, setup violation,
	// X capture).
	ByWatchdog Detection = "watchdog"
	// BySimError: the simulator aborted (event budget — oscillation).
	BySimError Detection = "sim-error"
)

// Outcome is the classification of one injected fault.
type Outcome struct {
	Fault    Fault     `json:"fault"`
	Detected bool      `json:"detected"`
	By       Detection `json:"by,omitempty"`
	// Detail pinpoints the first evidence (register and capture index, net,
	// or diagnostic).
	Detail string `json:"detail,omitempty"`
	// Period is the faulted run's effective handshake period (ns,
	// normalized to the nominal corner), estimated from its busiest capture
	// train; 0 when the run captured too little to measure. Sweeps fold it
	// into streaming quantiles — the robustness-surface observable.
	Period float64 `json:"period,omitempty"`
	// Diags are the watchdog reports of the faulted run.
	Diags []sim.Diagnostic `json:"diags,omitempty"`
}

// Report aggregates a campaign.
type Report struct {
	Outcomes []Outcome `json:"outcomes"`
}

// Detected counts detections within a class ("" = all).
func (r *Report) Detected(c Class) (detected, injected int) {
	for _, o := range r.Outcomes {
		if c != "" && o.Fault.Class != c {
			continue
		}
		injected++
		if o.Detected {
			detected++
		}
	}
	return detected, injected
}

// DetectionRate is detected/injected for a class ("" = all); 1.0 when the
// class is empty.
func (r *Report) DetectionRate(c Class) float64 {
	d, n := r.Detected(c)
	if n == 0 {
		return 1
	}
	return float64(d) / float64(n)
}

// Escaped lists the faults no checker caught.
func (r *Report) Escaped() []Fault {
	var out []Fault
	for _, o := range r.Outcomes {
		if !o.Detected {
			out = append(out, o.Fault)
		}
	}
	return out
}

// WriteJSON renders the campaign as indented JSON with outcomes in fault
// order. Everything in it is deterministic — the determinism suite diffs
// this output byte-for-byte across worker counts.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Render formats the campaign as a text table: per-class detection rates,
// the detection-mechanism histogram, and any escapes.
func (r *Report) Render() string {
	var sb strings.Builder
	classes := []Class{ClassDelay, ClassStuckAt, ClassGlitch}
	fmt.Fprintf(&sb, "fault campaign: %d faults injected\n", len(r.Outcomes))
	fmt.Fprintf(&sb, "  %-10s %9s %9s %7s\n", "class", "injected", "detected", "rate")
	for _, c := range classes {
		d, n := r.Detected(c)
		if n == 0 {
			continue
		}
		fmt.Fprintf(&sb, "  %-10s %9d %9d %6.1f%%\n", c, n, d, 100*float64(d)/float64(n))
	}
	mech := map[Detection]int{}
	for _, o := range r.Outcomes {
		if o.Detected {
			mech[o.By]++
		}
	}
	var ms []string
	for m := range mech {
		ms = append(ms, string(m))
	}
	sort.Strings(ms)
	sb.WriteString("  detected by:")
	for _, m := range ms {
		fmt.Fprintf(&sb, " %s=%d", m, mech[Detection(m)])
	}
	sb.WriteString("\n")
	for _, o := range r.Outcomes {
		if !o.Detected {
			fmt.Fprintf(&sb, "  ESCAPED: %s\n", o.Fault)
		}
	}
	return sb.String()
}
