package expt

import "testing"

// TestRunGenFlow pushes a small parametric pipeline through the generic
// desynchronization flow — the path drequiv/drsweep take for -gen specs —
// and checks the manual grouping survived into the control network.
func TestRunGenFlow(t *testing.T) {
	f, err := RunGenFlow("pipeline:depth=4,width=16,regions=2", FlowConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if f.Period <= 0 {
		t.Fatalf("period = %v, want > 0", f.Period)
	}
	if got := len(f.Result.Network.Regions); got != 2 {
		t.Fatalf("regions = %d, want 2", got)
	}
	if f.Desync.Top.Port("rst_desync") == nil {
		t.Fatal("desynchronized top has no rst_desync")
	}
}

func TestRunGenFlowRejects(t *testing.T) {
	if _, err := RunGenFlow("pipeline:depth=0", FlowConfig{}); err == nil {
		t.Fatal("want error for invalid spec")
	}
}
