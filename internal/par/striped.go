package par

import "sync"

// Striped is a lock-striped string-keyed map for concurrent deduplication.
// Keys are hashed (FNV-1a) onto a power-of-two stripe count, each stripe
// guarded by its own RWMutex, so workers inserting disjoint keys rarely
// contend.
//
// The write primitive is Update, an atomic read-modify-write; the equiv
// frontier search uses it as insert-if-min over occurrence priorities,
// which is what makes parallel exploration reproduce the serial visit
// order exactly (see UpdateMin's doc in internal/equiv).
type Striped[V any] struct {
	stripes []stripe[V]
	mask    uint64
}

type stripe[V any] struct {
	mu sync.RWMutex
	m  map[string]V
}

// NewStriped builds a map with at least the given stripe count, rounded up
// to a power of two; counts below 1 get a single stripe.
func NewStriped[V any](stripes int) *Striped[V] {
	n := 1
	for n < stripes {
		n <<= 1
	}
	s := &Striped[V]{stripes: make([]stripe[V], n), mask: uint64(n - 1)}
	for i := range s.stripes {
		s.stripes[i].m = map[string]V{}
	}
	return s
}

func (s *Striped[V]) stripeOf(key string) *stripe[V] {
	// Inline FNV-1a: the keys are short packed states, hashed once per
	// operation on a hot path.
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &s.stripes[h&s.mask]
}

// Get returns the value stored for key.
func (s *Striped[V]) Get(key string) (V, bool) {
	st := s.stripeOf(key)
	st.mu.RLock()
	v, ok := st.m[key]
	st.mu.RUnlock()
	return v, ok
}

// Update atomically read-modify-writes the entry for key: fn receives the
// current value (zero V when absent) and whether one existed, and returns
// the value to store plus whether to store it. Concurrent Updates on the
// same key serialize on the stripe lock.
func (s *Striped[V]) Update(key string, fn func(old V, ok bool) (V, bool)) {
	st := s.stripeOf(key)
	st.mu.Lock()
	old, ok := st.m[key]
	if v, store := fn(old, ok); store {
		st.m[key] = v
	}
	st.mu.Unlock()
}

// Len counts the stored entries across all stripes.
func (s *Striped[V]) Len() int {
	n := 0
	for i := range s.stripes {
		s.stripes[i].mu.RLock()
		n += len(s.stripes[i].m)
		s.stripes[i].mu.RUnlock()
	}
	return n
}
