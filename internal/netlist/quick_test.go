package netlist

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: Connect followed by Disconnect restores the net's endpoint
// lists exactly, for random connection orders.
func TestQuickConnectDisconnectInverse(t *testing.T) {
	lib := tinyLib()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewModule("m")
		var nets []*Net
		for i := 0; i < 6; i++ {
			nets = append(nets, m.AddNet(fmt.Sprintf("n%d", i)))
		}
		var insts []*Inst
		for i := 0; i < 8; i++ {
			in := m.AddInst(fmt.Sprintf("g%d", i), lib.MustCell("AND2"))
			m.MustConnect(in, "A", nets[rng.Intn(len(nets))])
			m.MustConnect(in, "B", nets[rng.Intn(len(nets))])
			insts = append(insts, in)
		}
		// Disconnect and reconnect a random subset in random order.
		perm := rng.Perm(len(insts))
		var touched []*Inst
		for _, i := range perm[:4] {
			m.Disconnect(insts[i], "A")
			touched = append(touched, insts[i])
		}
		for _, in := range touched {
			// Churn through a temporary net and back off it.
			tmp := m.EnsureNet("tmp_" + in.Name)
			m.MustConnect(in, "A", tmp)
			m.Disconnect(in, "A")
		}
		// Structural invariants must survive arbitrary churn: no duplicate
		// or dangling endpoints anywhere.
		for _, n := range m.Nets {
			seen := map[string]bool{}
			for _, s := range n.Sinks {
				key := s.String()
				if seen[key] {
					t.Logf("duplicate sink %s on %s", key, n.Name)
					return false
				}
				seen[key] = true
				if s.Inst != nil && s.Inst.Conn(s.Pin) != n {
					t.Logf("dangling sink %s on %s", key, n.Name)
					return false
				}
			}
			if n.Driver.Inst != nil && n.Driver.Inst.Conn(n.Driver.Pin) != n {
				t.Logf("dangling driver on %s", n.Name)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: flattening preserves total library-cell instance counts and
// keeps every connection consistent, for random two-level hierarchies.
func TestQuickFlattenPreservesStructure(t *testing.T) {
	lib := tinyLib()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random submodule: k inverters in series.
		k := 1 + rng.Intn(4)
		sub := NewModule("sub")
		sub.AddPort("i", In)
		sub.AddPort("o", Out)
		prev := sub.Net("i")
		for j := 0; j < k; j++ {
			out := sub.Net("o")
			if j != k-1 {
				out = sub.AddNet(fmt.Sprintf("m%d", j))
			}
			g := sub.AddInst(fmt.Sprintf("v%d", j), lib.MustCell("INV"))
			sub.MustConnect(g, "A", prev)
			sub.MustConnect(g, "Z", out)
			prev = out
		}
		// Top: a chain of n submodule instances.
		n := 1 + rng.Intn(5)
		d := NewDesign("top", lib)
		d.Top.AddPort("a", In)
		d.Top.AddPort("y", Out)
		prevNet := d.Top.Net("a")
		for j := 0; j < n; j++ {
			out := d.Top.Net("y")
			if j != n-1 {
				out = d.Top.AddNet(fmt.Sprintf("l%d", j))
			}
			si := d.Top.AddSubInst(fmt.Sprintf("s%d", j), sub)
			d.Top.MustConnect(si, "i", prevNet)
			d.Top.MustConnect(si, "o", out)
			prevNet = out
		}
		if err := d.Flatten(true); err != nil {
			t.Log(err)
			return false
		}
		if len(d.Top.Insts) != n*k {
			t.Logf("want %d flat cells, got %d", n*k, len(d.Top.Insts))
			return false
		}
		if errs := d.Top.Check(); len(errs) > 0 {
			t.Log(errs[0])
			return false
		}
		// Groups assigned densely 1..n.
		groups := map[int]bool{}
		for _, in := range d.Top.Insts {
			groups[in.Group] = true
		}
		return len(groups) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: ComputeStats area equals the sum over instances, invariant to
// instance creation order.
func TestQuickStatsAdditive(t *testing.T) {
	lib := tinyLib()
	f := func(counts [4]uint8) bool {
		m := NewModule("m")
		cells := []string{"INV", "BUF", "AND2", "DFF"}
		want := 0.0
		id := 0
		for ci, c := range counts {
			for j := 0; j < int(c%10); j++ {
				cell := lib.MustCell(cells[ci])
				m.AddInst(fmt.Sprintf("i%d", id), cell)
				id++
				want += cell.Area
			}
		}
		st := m.ComputeStats()
		return st.CellArea == want && st.Cells == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
