// variability reproduces the paper's central argument (Fig 5.4): sample a
// population of chips spread between the process corners, and show that the
// clockless DLX runs each chip at its own speed — beating the synchronous
// design's worst-case clock on the large majority of dies.
//
// Run with: go run ./examples/variability [-chips 60]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
)

import "desync/internal/expt"

func main() {
	chips := flag.Int("chips", 60, "population size")
	sel := flag.Int("sel", 3, "delay-element selection (calibrated tap)")
	flag.Parse()

	mc, flow, err := expt.Fig54(*chips, 15, *sel, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(mc.Render())

	// ASCII histogram of the population.
	const bins = 12
	lo, hi := mc.Periods[0], mc.Periods[len(mc.Periods)-1]
	counts := make([]int, bins)
	for _, p := range mc.Periods {
		b := int(float64(bins) * (p - lo) / (hi - lo + 1e-9))
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	fmt.Println("effective period distribution:")
	for b := 0; b < bins; b++ {
		left := lo + (hi-lo)*float64(b)/bins
		marker := " "
		if left <= mc.DLXWorstPeriod && mc.DLXWorstPeriod < left+(hi-lo)/bins {
			marker = "<- DLX worst-case clock"
		}
		fmt.Printf("  %6.2f ns |%-30s %s\n", left, strings.Repeat("#", counts[b]), marker)
	}
	fmt.Printf("\nsynchronous worst-case period: %.3f ns (every chip pays it)\n", flow.Period)
	fmt.Printf("desynchronized: each chip runs at its own rate; %.0f%% are faster.\n",
		mc.FasterFraction*100)
}
