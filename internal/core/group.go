package core

import (
	"sort"

	"desync/internal/netlist"
)

// GroupingResult reports what the automatic region creation found.
type GroupingResult struct {
	Groups int // number of regions created, excluding group 0
	// Group0 is the count of sequential elements assigned to the catch-all
	// region of input-registering flip-flops (step 3 of Fig 3.3).
	Group0 int
}

// GroupOptions tunes the grouping algorithm for ablation studies.
type GroupOptions struct {
	// DisableBusRule switches off the by-name bus heuristic of Fig 3.6.
	DisableBusRule bool
}

// AutoGroup runs the grouping algorithm of Fig 3.4 on a flat module,
// assigning every instance's Group field. Regions are connected components
// of combinational logic together with the sequential elements they drive;
// ungrouped sequential elements directly driven by grouped ones join that
// group (the flip-flop-to-flip-flop rule); everything left joins group 0.
// Nets marked FalsePath and clock/enable pins are not traversed. The
// by-name bus heuristic merges components that drive bits of the same
// declared bus (Fig 3.6).
func AutoGroup(m *netlist.Module) GroupingResult {
	return AutoGroupOpt(m, GroupOptions{})
}

// AutoGroupOpt is AutoGroup with explicit options.
func AutoGroupOpt(m *netlist.Module, opts GroupOptions) GroupingResult {
	for _, in := range m.Insts {
		in.Group = -1
	}
	// Bus heuristic: map bus base name -> driver instances of its bits.
	busDrivers := map[string][]*netlist.Inst{}
	for _, n := range m.Nets {
		if n.FalsePath || n.Driver.Inst == nil {
			continue
		}
		if base, _, ok := netlist.BusBase(n.Name); ok {
			busDrivers[base] = append(busDrivers[base], n.Driver.Inst)
		}
	}

	next := 1
	// Step 1: flood from each ungrouped combinational gate.
	for _, seed := range m.Insts {
		if seed.Group != -1 || !isComb(seed) {
			continue
		}
		grp := next
		next++
		queue := []*netlist.Inst{seed}
		seed.Group = grp
		for len(queue) > 0 {
			cell := queue[0]
			queue = queue[1:]
			add := func(in *netlist.Inst) {
				if in != nil && in.Group == -1 {
					in.Group = grp
					queue = append(queue, in)
				}
			}
			// Combinational source cells of every member (including the
			// region's sequential elements, whose data-input cones belong
			// to this cloud).
			for _, pc := range cell.Conns() {
				pin, n := pc.Pin, pc.Net
				pd := cell.Cell.Pin(pin)
				if pd == nil || pd.Dir != netlist.In || n.FalsePath {
					continue
				}
				if pd.Class != netlist.ClassData && pd.Class != netlist.ClassScanIn {
					continue
				}
				if src := n.Driver.Inst; src != nil && isComb(src) {
					add(src)
				}
			}
			if isComb(cell) {
				// Target cells of combinational members (both gates and the
				// flip-flops the cloud drives).
				for _, pc := range cell.Conns() {
					pin, n := pc.Pin, pc.Net
					pd := cell.Cell.Pin(pin)
					if pd == nil || pd.Dir != netlist.Out || n.FalsePath {
						continue
					}
					for _, s := range n.Sinks {
						if s.Inst == nil {
							continue
						}
						// Do not capture a cell through control-class pins:
						// clocks, enables, async set/reset and scan enables
						// fan out globally and would merge all regions.
						if spd := pinDefOf(s); spd != nil && spd.Class != netlist.ClassData {
							continue
						}
						add(s.Inst)
					}
					// Bus rule: other drivers of the same declared bus.
					if base, _, ok := netlist.BusBase(n.Name); ok && !opts.DisableBusRule {
						for _, drv := range busDrivers[base] {
							add(drv)
						}
					}
				}
			}
		}
	}

	// Step 2: ungrouped sequential elements directly driven by grouped
	// sequential elements join the driver's group (signal-history chains).
	for changed := true; changed; {
		changed = false
		for _, in := range m.Insts {
			if in.Group != -1 || in.Cell == nil || in.Cell.Seq == nil {
				continue
			}
			for _, pc := range in.Conns() {
				pin, n := pc.Pin, pc.Net
				pd := in.Cell.Pin(pin)
				if pd == nil || pd.Dir != netlist.In || pd.Class != netlist.ClassData || n.FalsePath {
					continue
				}
				drv := n.Driver.Inst
				if drv != nil && drv.Cell != nil && drv.Cell.Seq != nil && drv.Group > 0 {
					in.Group = drv.Group
					changed = true
					break
				}
			}
		}
	}

	// Step 3: everything left (input-registering flip-flops, isolated
	// cells) goes to group 0, as do regions that ended up with no
	// sequential elements (e.g. gates cut off by false-path marking): a
	// region without registers has no controller.
	res := GroupingResult{}
	seqIn := map[int]bool{}
	for _, in := range m.Insts {
		if in.Cell != nil && in.Cell.Seq != nil {
			seqIn[in.Group] = true
		}
	}
	for _, in := range m.Insts {
		if in.Group == -1 || (in.Group > 0 && !seqIn[in.Group]) {
			in.Group = 0
			res.Group0++
		}
	}
	res.Groups = compactGroups(m)
	return res
}

// compactGroups renumbers groups densely (1..n, keeping 0) and returns n.
func compactGroups(m *netlist.Module) int {
	used := map[int]bool{}
	for _, in := range m.Insts {
		if in.Group > 0 {
			used[in.Group] = true
		}
	}
	ids := make([]int, 0, len(used))
	for id := range used {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	remap := map[int]int{}
	for i, id := range ids {
		remap[id] = i + 1
	}
	for _, in := range m.Insts {
		if in.Group > 0 {
			in.Group = remap[in.Group]
		}
	}
	return len(ids)
}

// GroupsOf returns the instance lists per group id.
func GroupsOf(m *netlist.Module) map[int][]*netlist.Inst {
	out := map[int][]*netlist.Inst{}
	for _, in := range m.Insts {
		out[in.Group] = append(out[in.Group], in)
	}
	return out
}

// MarkFalsePaths flags the named nets as false paths so grouping and the
// dependency graph ignore them (global resets, clock-gating enables —
// §3.2.2 "False Paths"). Unknown names are reported.
func MarkFalsePaths(m *netlist.Module, names []string) []string {
	var missing []string
	for _, name := range names {
		if n := m.Net(name); n != nil {
			n.FalsePath = true
		} else {
			missing = append(missing, name)
		}
	}
	return missing
}

// isComb reports whether grouping should traverse through the cell. Tie
// cells are excluded: a constant fans out to unrelated clouds and carries no
// data dependency, so traversing it would merge every region touching a
// constant.
func isComb(in *netlist.Inst) bool {
	return in.Cell != nil && in.Cell.Kind == netlist.KindComb
}

func pinDefOf(ref netlist.PinRef) *netlist.PinDef {
	if ref.Inst == nil || ref.Inst.Cell == nil {
		return nil
	}
	return ref.Inst.Cell.Pin(ref.Pin)
}
