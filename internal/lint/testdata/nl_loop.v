// NL-LOOP fixture: u1 and u2 form a combinational cycle (n1 -> n2 -> n1).
// The buffer to z keeps the cluster observable so only the loop rule fires.
module bad_loop (a, z);
  input a;
  output z;
  wire n1, n2;
  AND2X1 u1 (.A(a), .B(n2), .Z(n1));
  INVX1 u2 (.A(n1), .Z(n2));
  BUFX1 u3 (.A(n1), .Z(z));
endmodule
