// NL-PIN fixture: u1's B input is left unconnected, so the AND computes
// garbage. The output pin path keeps the gate alive (no NL-CONE noise).
module bad_pin (a, z);
  input a;
  output z;
  AND2X1 u1 (.A(a), .Z(z));
endmodule
