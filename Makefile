# Build and verification entry points. `make check` is the CI gate:
# vet, the static lint gate, the formal equivalence gate over both case
# studies, the full test suite under the race detector, and the smoke
# guards (any escaped fault or state-count drift fails the build).

GO ?= go

.PHONY: all build test check vet lint equiv fuzz bench faults sweep serve scale

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Compiler-level static analysis, runnable on its own.
vet:
	$(GO) vet ./...

# Static verification: repolint enforces the repo's own coding conventions,
# drlint verifies both example designs before and (via the flow's built-in
# gates) after desynchronization, the mga marked-graph engine issues
# its polynomial-time liveness/safety/period verdicts on all three case
# studies (drequiv -static), and a two-phase DLX conversion exercises the
# alternate backend end to end (its TP-* lint gate runs inside the tool).
lint:
	$(GO) run ./cmd/repolint
	$(GO) run ./cmd/drlint -gen dlx
	$(GO) run ./cmd/drlint -gen arm
	$(GO) run ./cmd/drequiv -gen dlx -static
	$(GO) run ./cmd/drequiv -gen fir -static
	$(GO) run ./cmd/drdesync -gen dlx -backend twophase \
		-out /tmp/drdesync-tp-smoke.v -sdc /tmp/drdesync-tp-smoke.sdc
	rm -f /tmp/drdesync-tp-smoke.v /tmp/drdesync-tp-smoke.sdc

# Formal verification: model-check deadlock-freedom, phase safety and flow
# equivalence of both case studies' control networks, cross-validated
# against one randomized simulator trace each.
equiv:
	$(GO) run ./cmd/drequiv -gen dlx -xval 1
	$(GO) run ./cmd/drequiv -gen arm -xval 1

check: vet lint equiv sweep serve scale
	# Targeted race pass first: the parallel engine, the fault fan-out, the
	# sweep's ordered fold and journal, the ctrlnet derivation cache and the
	# equiv model built on it are the shared-state hot spots; fail fast on
	# them before the full-suite race run below.
	$(GO) test -race ./internal/par/ ./internal/faults/ ./internal/sweep/ ./internal/ctrlnet/ ./internal/equiv/
	$(GO) test -race -run 'Parallel|Cancellation' ./internal/sta/ ./internal/core/
	$(GO) test -race ./...
	$(GO) test -run XXX -bench 'BenchmarkFaultCampaignSmoke|BenchmarkCampaignParallelDLX|BenchmarkSweepSmokeDLX|BenchmarkLintClean|BenchmarkMGAStaticDLX' -benchtime 1x .
	$(GO) test -run XXX -bench 'BenchmarkEquivDLX$$|BenchmarkEquivParallelDLX' -benchtime 1x ./internal/equiv/
	$(GO) test -run XXX -bench 'BenchmarkServeCachedSubmit' -benchtime 1x ./internal/flowserv/
	$(GO) test -run XXX -bench 'BenchmarkNetlistDerive100k' -benchtime 1x ./internal/expt/

# Short fuzz passes over the three text front ends and the sweep's
# checkpoint-journal parser; corpora are committed under
# internal/{verilog,liberty,sdc,sweep}/testdata/fuzz.
fuzz:
	$(GO) test ./internal/verilog/ -fuzz FuzzRead -fuzztime 20s
	$(GO) test ./internal/liberty/ -fuzz FuzzParse -fuzztime 20s
	$(GO) test ./internal/sdc/ -fuzz FuzzParse -fuzztime 20s
	$(GO) test ./internal/sweep/ -fuzz FuzzReadJournal -fuzztime 20s

bench:
	$(GO) test -run XXX -bench . -benchtime 1x .

faults:
	$(GO) run ./cmd/experiments -faults

# Robustness-surface smoke: a small corner x chip x fault sweep through the
# streaming engine, checkpointed and resumed, so `make check` exercises the
# drsweep path end to end (journal create, SIGTERM-safe fold, resume
# replay). The surface must be flat — any escape fails the run via the
# sweep smoke benchmark above; this target checks the CLI plumbing.
# Job-server smoke: start an in-process drserve on an ephemeral port,
# submit the DLX over real HTTP, poll it to completion, resubmit and
# verify the cache hit is instant and byte-identical, then drain. This is
# the flow-as-a-service path `make check` exercises end to end.
serve:
	$(GO) run ./cmd/drserve -smoke

# Million-gate-core smoke: generate a 100k-instance pipeline and push it
# through the whole representation surface — Verilog export, re-import,
# ContentHash, Validate, the desynchronization flow and a fresh control
# derivation. On the SoA core the row takes a few seconds; the generous
# bound only trips if some stage regresses to its old quadratic shape.
scale:
	timeout 300 $(GO) run ./cmd/experiments -scale 100000

sweep:
	rm -f /tmp/drsweep-smoke.journal
	$(GO) run ./cmd/drsweep -corners 2 -chips 2 -per-region 1 -quiet \
		-checkpoint /tmp/drsweep-smoke.journal
	$(GO) run ./cmd/drsweep -corners 2 -chips 2 -per-region 1 -quiet \
		-checkpoint /tmp/drsweep-smoke.journal -resume
	rm -f /tmp/drsweep-smoke.journal
