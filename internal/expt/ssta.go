package expt

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"desync/internal/core"
	"desync/internal/ctrlnet"
	"desync/internal/netlist"
	"desync/internal/ssta"
	"desync/internal/sta"
	"desync/internal/stdcells"
)

// MatchRow is the statistical delay-element-matching verdict for one
// region: the SSTA distributions of the matched delay element's path and
// the logic it shadows, and the probability the element covers the logic —
// computed both on-die (shared global variation, the desynchronization
// situation) and for a hypothetical independently-varying reference.
type MatchRow struct {
	Region           int
	Element          ssta.Dist
	Logic            ssta.Dist
	CoverShared      float64
	CoverIndependent float64
}

// SSTAMatching performs the verification the paper's future-work section
// describes: statistical STA over the desynchronized design, checking how
// well each region's delay element tracks its logic across the whole
// spectrum of operating conditions. The shared-global coverage is the real
// situation (element and logic on the same die); the independent column
// shows what an off-die reference of the same nominal margin would achieve.
func SSTAMatching(f *DLXFlow) ([]MatchRow, error) {
	return SSTAMatchingDesign(f.Desync, f.Result)
}

// SSTAMatchingDesign is SSTAMatching over any desynchronized design and
// its flow result (the DLX, ARM and FIR case studies all qualify).
func SSTAMatchingDesign(d *netlist.Design, res *core.Result) ([]MatchRow, error) {
	model := ssta.DefaultModel(stdcells.CornerSpread)
	r, err := ssta.Analyze(d.Top, sta.Options{
		Disabled: res.DisabledArcMap(),
	}, model)
	if err != nil {
		return nil, err
	}
	m := d.Top

	// Launch + capture guard of a latch pair, as a canonical form.
	var c2q, setup float64
	for _, c := range d.Lib.Cells {
		if c.Kind != netlist.KindLatch {
			continue
		}
		if a := c.Arc(c.Seq.ClockPin, c.Seq.Q); a != nil {
			c2q = math.Max(c2q, math.Max(a.Rise.Best, a.Fall.Best))
		}
		setup = math.Max(setup, c.Setup.Best)
	}
	guard := model.CellDelay(c2q + setup)

	var rows []MatchRow
	for _, g := range res.DDG.Nodes {
		ctl := m.Inst(ctrlnet.CtrlGate(g, true, ctrlnet.GateG))
		if ctl == nil {
			continue
		}
		elem, err := r.ArrivalAt(ctl, "B")
		if err != nil {
			continue // completion-detected or env-driven region
		}
		var logicD ssta.Dist
		found := false
		for _, in := range m.Insts {
			if in.Group != g || in.Cell == nil || in.Cell.Kind != netlist.KindLatch {
				continue
			}
			if !strings.HasSuffix(in.Name, "/ml") {
				continue
			}
			d, err := r.ArrivalAt(in, "D")
			if err != nil {
				continue // direct register-to-register input
			}
			if !found {
				logicD = d
				found = true
			} else {
				logicD = ssta.Max(logicD, d)
			}
		}
		if !found {
			continue
		}
		logicTotal := logicD.Add(guard)
		rows = append(rows, MatchRow{
			Region:           g,
			Element:          elem,
			Logic:            logicTotal,
			CoverShared:      ssta.CoverageProbability(elem, logicTotal, 0, true),
			CoverIndependent: ssta.CoverageProbability(elem, logicTotal, 0, false),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Region < rows[j].Region })
	if len(rows) == 0 {
		return nil, fmt.Errorf("expt: no regions with matched delay elements")
	}
	return rows, nil
}

// RenderSSTA prints the matching table.
func RenderSSTA(rows []MatchRow) string {
	var sb strings.Builder
	sb.WriteString("Delay-element matching under SSTA (§6 future work)\n")
	sb.WriteString("  element and logic as mean±sigma (ns); coverage = P(element ≥ logic)\n")
	fmt.Fprintf(&sb, "  %-7s %16s %16s %12s %14s\n",
		"region", "delay element", "logic+guard", "on-die", "off-die ref")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-7d %9.3f±%.3f %9.3f±%.3f %11.1f%% %13.1f%%\n",
			r.Region, r.Element.Mean, r.Element.Sigma(),
			r.Logic.Mean, r.Logic.Sigma(),
			r.CoverShared*100, r.CoverIndependent*100)
	}
	return sb.String()
}
