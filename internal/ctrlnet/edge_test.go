package ctrlnet_test

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"desync/internal/core"
	"desync/internal/ctrlnet"
	"desync/internal/mga"
	"desync/internal/netlist"
	"desync/internal/stdcells"
)

// Region-DDG edge cases the DLX fixture cannot exercise: self-loop
// regions (a register bank computing on its own output), multiple
// disconnected SCCs in one module, and a drained (token-free) handshake
// cycle — the derivation must stay structural on all three, and the mga
// verdicts built on it must match.

// addAccumulator adds one 2-bit self-feeding register stage named prefix
// to the module: each bit XORs the bank's own outputs, so the stage's only
// data dependency is itself and AutoGroup gives it a self-loop DDG node.
func addAccumulator(m *netlist.Module, lib *netlist.Library, prefix string) {
	for i := 0; i < 2; i++ {
		q := m.EnsureNet(fmt.Sprintf("%s_q[%d]", prefix, i))
		dn := m.AddNet(fmt.Sprintf("%sd[%d]", prefix, i))
		g := m.AddInst(fmt.Sprintf("%s_x%d", prefix, i), lib.MustCell("XOR2X1"))
		m.MustConnect(g, "A", q)
		m.MustConnect(g, "B", m.EnsureNet(fmt.Sprintf("%s_q[%d]", prefix, (i+1)%2)))
		m.MustConnect(g, "Z", dn)
		ff := m.AddInst(fmt.Sprintf("%s_r[%d]", prefix, i), lib.MustCell("DFFRQX1"))
		m.MustConnect(ff, "D", dn)
		m.MustConnect(ff, "CK", m.Net("clk"))
		m.MustConnect(ff, "RN", m.Net("rstn"))
		m.MustConnect(ff, "Q", q)
		b := m.AddInst(fmt.Sprintf("%s_ob%d", prefix, i), lib.MustCell("BUFX1"))
		m.MustConnect(b, "A", q)
		m.MustConnect(b, "Z", m.Net(fmt.Sprintf("%s_out[%d]", prefix, i)))
	}
}

func buildAccumulators(prefixes ...string) *netlist.Design {
	lib := stdcells.New(stdcells.HighSpeed)
	d := netlist.NewDesign("acc", lib)
	m := d.Top
	m.AddPort("clk", netlist.In)
	m.AddPort("rstn", netlist.In)
	for _, p := range prefixes {
		m.AddPort(p+"_out[0]", netlist.Out)
		m.AddPort(p+"_out[1]", netlist.Out)
	}
	for _, p := range prefixes {
		addAccumulator(m, lib, p)
	}
	return d
}

func desync(t *testing.T, d *netlist.Design) *core.Result {
	t.Helper()
	res, err := core.Desynchronize(context.Background(), d, core.Options{Period: 2.0})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDeriveSelfLoopRegion(t *testing.T) {
	d := buildAccumulators("a")
	res := desync(t, d)
	n := ctrlnet.DeriveFresh(d.Top)
	if len(n.Regions) != 1 {
		t.Fatalf("regions = %v, want one self-loop region", n.Regions)
	}
	g := n.Regions[0]
	// The region's only data dependency is itself: the derived region graph
	// must carry the self edge, matching the flow's DDG.
	if !reflect.DeepEqual(n.Succs[g], []int{g}) {
		t.Fatalf("succs[%d] = %v, want the self edge", g, n.Succs[g])
	}
	if !reflect.DeepEqual(n.Succs[g], res.DDG.Succs[g]) {
		t.Fatalf("derived succs %v disagree with flow DDG %v", n.Succs[g], res.DDG.Succs[g])
	}
	if c := n.Controllers[g]; c == nil || !c.Complete() {
		t.Fatalf("self-loop region derived an incomplete controller")
	}
	if len(n.EnvRequests) != 0 || len(n.EnvAcks) != 0 {
		t.Fatalf("closed self-loop exposed environment ports req=%v ack=%v", n.EnvRequests, n.EnvAcks)
	}
	// The self-loop marked graph is the smallest live network: one request
	// channel G→G plus the controller-internal places.
	rep, err := mga.Analyze(d.Top, n, mga.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Live || !rep.Safe {
		t.Fatalf("self-loop region: live=%v safe=%v, want both", rep.Live, rep.Safe)
	}
	if rep.PeriodNs <= 0 {
		t.Fatalf("self-loop region has a cycle, so a period bound must exist; got %v", rep.PeriodNs)
	}
}

func TestDeriveMultipleSCCs(t *testing.T) {
	// Two accumulators with no data path between them: two singleton SCCs
	// in one module, each with its own self edge and controller.
	d := buildAccumulators("a", "b")
	res := desync(t, d)
	n := ctrlnet.DeriveFresh(d.Top)
	if len(n.Regions) != 2 {
		t.Fatalf("regions = %v, want two disconnected regions", n.Regions)
	}
	if !sort.IntsAreSorted(n.Regions) {
		t.Fatalf("regions %v not sorted", n.Regions)
	}
	for _, g := range n.Regions {
		if !reflect.DeepEqual(n.Succs[g], []int{g}) {
			t.Errorf("region %d: succs = %v, want only the self edge (no cross-SCC leakage)", g, n.Succs[g])
		}
		if !reflect.DeepEqual(n.Succs[g], res.DDG.Succs[g]) {
			t.Errorf("region %d: derived succs %v disagree with flow DDG %v", g, n.Succs[g], res.DDG.Succs[g])
		}
		if c := n.Controllers[g]; c == nil || !c.Complete() {
			t.Errorf("region %d: incomplete controller", g)
		}
	}
	rep, err := mga.Analyze(d.Top, n, mga.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regions != 2 || !rep.Live || !rep.Safe {
		t.Fatalf("two-SCC module: regions=%d live=%v safe=%v", rep.Regions, rep.Live, rep.Safe)
	}
	// Each SCC contributes its own local bottleneck row.
	if len(rep.PerRegion) != 2 {
		t.Fatalf("per-region rows = %v, want one per SCC", rep.PerRegion)
	}
}

func TestDeriveTokenFreeCycleFixture(t *testing.T) {
	// Invert the master latch-enable's reset phase of the self-loop region
	// (a construction bug: master resets opaque like a slave). Both banks
	// start closed, so the region's handshake cycle holds no token and can
	// never fire. The derivation is structural and must still recover the
	// region and its self edge — catching the drained cycle is mga's job,
	// on top of the still-correct IR.
	d := buildAccumulators("a")
	desync(t, d)
	g := ctrlnet.DeriveFresh(d.Top).Regions[0]
	mg := d.Top.Inst(fmt.Sprintf("G%d_Mctrl/g", g))
	if mg == nil {
		t.Fatal("controller g cell not found")
	}
	mg.Cell = d.Lib.MustCell("CGSX1")

	n := ctrlnet.DeriveFresh(d.Top)
	if len(n.Regions) != 1 || !reflect.DeepEqual(n.Succs[g], []int{g}) {
		t.Fatalf("tampered fixture changed the derived structure: regions=%v succs=%v",
			n.Regions, n.Succs[g])
	}
	if c := n.Controllers[g]; c == nil || !c.Complete() {
		t.Fatal("tampered fixture lost the controller")
	}
	rep, err := mga.Analyze(d.Top, n, mga.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Live {
		t.Fatal("token-free handshake cycle reported live")
	}
	found := false
	for _, f := range rep.Findings {
		if f.Rule == mga.RuleLive {
			found = true
		}
	}
	if !found {
		t.Fatalf("want an MG-LIVE token-free-cycle finding, got %v", rep.Findings)
	}
}
