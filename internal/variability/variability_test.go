package variability

import (
	"math/rand"
	"testing"

	"desync/internal/netlist"
	"desync/internal/stdcells"
)

func TestSampleDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	chips := Sample(rng, 4000, 1.0/6)
	var sum float64
	for _, c := range chips {
		if c.Theta < 0 || c.Theta > 1 {
			t.Fatalf("theta out of range: %v", c.Theta)
		}
		sum += c.Theta
	}
	mean := sum / float64(len(chips))
	if mean < 0.45 || mean > 0.55 {
		t.Fatalf("mean theta %.3f, want ~0.5", mean)
	}
	// Scale spans [1, spread].
	if (Chip{Theta: 0}).Scale() != 1 {
		t.Fatal("theta 0 must be the best corner")
	}
	if (Chip{Theta: 1}).Scale() != stdcells.CornerSpread {
		t.Fatal("theta 1 must be the worst corner")
	}
	if WorstCaseScale() != stdcells.CornerSpread {
		t.Fatal("worst-case scale mismatch")
	}
}

func TestIntraDie(t *testing.T) {
	lib := stdcells.New(stdcells.HighSpeed)
	m := netlist.NewModule("m")
	for i := 0; i < 200; i++ {
		in := m.AddInst(string(rune('a'+i%26))+string(rune('0'+i/26)), lib.MustCell("INVX1"))
		_ = in
	}
	rng := rand.New(rand.NewSource(2))
	ApplyIntraDie(m, 0.05, rng)
	varied := 0
	for _, in := range m.Insts {
		if in.DelayFactor < 0.85 || in.DelayFactor > 1.15 {
			t.Fatalf("factor %v outside clamp", in.DelayFactor)
		}
		if in.DelayFactor != 1 {
			varied++
		}
	}
	if varied < 150 {
		t.Fatal("intra-die factors not applied")
	}
	ResetIntraDie(m)
	for _, in := range m.Insts {
		if in.DelayFactor != 1 {
			t.Fatal("reset failed")
		}
	}
}

// TestIntraDieFactors: the map form must draw the same mismatch model as
// ApplyIntraDie without touching the module, compose with baked-in
// nominals instead of erasing them, and reproduce from its seed.
func TestIntraDieFactors(t *testing.T) {
	lib := stdcells.New(stdcells.HighSpeed)
	m := netlist.NewModule("m")
	for i := 0; i < 100; i++ {
		m.AddInst(string(rune('a'+i%26))+string(rune('0'+i/26)), lib.MustCell("INVX1"))
	}
	m.Insts[0].DelayFactor = 2 // a sized delay element

	a := IntraDieFactors(m, 0.05, rand.New(rand.NewSource(3)))
	b := IntraDieFactors(m, 0.05, rand.New(rand.NewSource(3)))
	if len(a) != len(m.Insts) {
		t.Fatalf("drew %d factors for %d instances", len(a), len(m.Insts))
	}
	varied := 0
	for name, f := range a {
		if b[name] != f {
			t.Fatalf("%s: same seed drew %v then %v", name, f, b[name])
		}
		base := 1.0
		if name == m.Insts[0].Name {
			base = 2
		}
		if f < base*0.85 || f > base*1.15 {
			t.Fatalf("%s: factor %v outside clamp around nominal %v", name, f, base)
		}
		if f != base {
			varied++
		}
	}
	if varied < 80 {
		t.Fatal("factors barely vary")
	}
	for _, in := range m.Insts[1:] {
		if in.DelayFactor != 1 {
			t.Fatal("module mutated")
		}
	}
}
