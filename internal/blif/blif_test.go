package blif

import (
	"strings"
	"testing"

	"desync/internal/netlist"
	"desync/internal/stdcells"
	"desync/internal/verilog"
)

func TestWriteBasics(t *testing.T) {
	lib := stdcells.New(stdcells.HighSpeed)
	src := `
module top (a, b, ck, q);
  input a, b, ck;
  output q;
  wire n1;
  NAND2X1 u1 (.A(a), .B(b), .Z(n1));
  DFFQX1 r (.D(n1), .CK(ck), .Q(q), .QN());
endmodule
`
	d, err := verilog.Read(src, lib, "")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Write(d.Top)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		".model top",
		".inputs a b ck",
		".outputs q",
		".names a b n1",
		".latch n1 q re ck 3",
		".end",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// NAND truth table: rows where output is 1.
	if !strings.Contains(out, "00 1") || !strings.Contains(out, "10 1") || !strings.Contains(out, "01 1") {
		t.Errorf("NAND on-set wrong:\n%s", out)
	}
	if strings.Contains(out, "11 1") {
		t.Errorf("NAND on-set contains 11:\n%s", out)
	}
}

func TestWriteLatchAndCElement(t *testing.T) {
	lib := stdcells.New(stdcells.HighSpeed)
	m := netlist.NewModule("m")
	m.AddPort("d", netlist.In)
	m.AddPort("g", netlist.In)
	m.AddPort("q", netlist.Out)
	la := m.AddInst("la", lib.MustCell("LATQX1"))
	m.MustConnect(la, "D", m.Net("d"))
	m.MustConnect(la, "G", m.Net("g"))
	m.MustConnect(la, "Q", m.Net("q"))
	c := m.AddInst("c1", lib.MustCell("C2X1"))
	cq := m.AddNet("cq")
	m.MustConnect(c, "A", m.Net("d"))
	m.MustConnect(c, "B", m.Net("g"))
	m.MustConnect(c, "Q", cq)

	out, err := Write(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, ".latch d q ah g 3") {
		t.Errorf("latch line wrong:\n%s", out)
	}
	if !strings.Contains(out, ".latch cq__state cq 3") {
		t.Errorf("C element feedback latch missing:\n%s", out)
	}
}

func TestWriteRejectsHierarchy(t *testing.T) {
	lib := stdcells.New(stdcells.HighSpeed)
	sub := netlist.NewModule("sub")
	d := netlist.NewDesign("top", lib)
	d.Top.AddSubInst("s", sub)
	if _, err := Write(d.Top); err == nil {
		t.Fatal("expected error for hierarchical module")
	}
}
