package expt

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"desync/internal/core"
	"desync/internal/ctrlnet"
	"desync/internal/designs"
	"desync/internal/netlist"
	"desync/internal/stdcells"
	"desync/internal/verilog"
)

// ScaleRow is one row of the netlist-core scaling table: wall-clock times
// for every stage the million-gate representation must keep near-linear.
type ScaleRow struct {
	Target int // requested instance count
	Insts  int // generated instance count
	Nets   int
	// Core netlist operations on the synchronous design.
	Build, Export, Import, Hash, Validate time.Duration
	// Desynchronization stages, keyed by the core.Stage* names, measured
	// from the flow's own progress boundaries.
	Stages map[string]time.Duration
	Flow   time.Duration // whole Desynchronize call
	Derive time.Duration // ctrlnet.DeriveFresh on the desynchronized top
}

// ScalePipelineCfg shapes a pipeline configuration that generates close to
// the target instance count: width 64, regions one per stage, mix rounds.
func ScalePipelineCfg(target int) designs.PipelineCfg {
	cfg := designs.PipelineCfg{Width: 64, Seed: 1, Kind: "mix", Fanout: "balanced"}
	cfg.Depth = target / (cfg.Width * 4)
	if cfg.Depth < 1 {
		cfg.Depth = 1
	}
	return cfg
}

// ScalePipeline measures the scaling row for one target size: generator
// build, Verilog export, re-import of the exported text, ContentHash and
// Validate on the synchronous design, then the desynchronization flow
// (per-stage from its progress boundaries) and a fresh control-network
// derivation on the result.
func ScalePipeline(ctx context.Context, target, parallelism int) (*ScaleRow, error) {
	cfg := ScalePipelineCfg(target)
	row := &ScaleRow{Target: target, Stages: map[string]time.Duration{}}

	t0 := time.Now()
	d, err := designs.BuildPipeline(stdcells.New(stdcells.HighSpeed), cfg)
	if err != nil {
		return nil, err
	}
	row.Build = time.Since(t0)
	row.Insts = len(d.Top.Insts)
	row.Nets = len(d.Top.Nets)

	t0 = time.Now()
	src := verilog.Write(d)
	row.Export = time.Since(t0)

	t0 = time.Now()
	if _, err := verilog.Read(src, d.Lib, d.Top.Name); err != nil {
		return nil, fmt.Errorf("re-import: %w", err)
	}
	row.Import = time.Since(t0)

	t0 = time.Now()
	d.Top.ContentHash()
	row.Hash = time.Since(t0)

	t0 = time.Now()
	if errs := d.Top.Validate(netlist.ValidateOptions{}); len(errs) > 0 {
		return nil, fmt.Errorf("validate: %v", errs[0])
	}
	row.Validate = time.Since(t0)

	// Desynchronize with per-stage timing from the progress boundaries:
	// each callback closes the previous stage and opens the next.
	last, lastStage := time.Now(), ""
	t0 = last
	res, err := core.Desynchronize(ctx, d, core.Options{
		Period:       2.0,
		ManualGroups: true,
		Parallelism:  parallelism,
		Progress: func(stage string) {
			now := time.Now()
			if lastStage != "" {
				row.Stages[lastStage] += now.Sub(last)
			}
			last, lastStage = now, stage
		},
	})
	if err != nil {
		return nil, err
	}
	if lastStage != "" {
		row.Stages[lastStage] += time.Since(last)
	}
	row.Flow = time.Since(t0)

	t0 = time.Now()
	ctrlnet.DeriveFresh(d.Top)
	row.Derive = time.Since(t0)
	_ = res
	return row, nil
}

// RenderScaleTable measures every target size and renders the table the
// scaling experiment records in EXPERIMENTS.md.
func RenderScaleTable(ctx context.Context, w io.Writer, targets []int, parallelism int) error {
	fmt.Fprintf(w, "%10s %10s %9s %9s %9s %9s %9s %9s %9s %9s %9s %9s\n",
		"insts", "nets", "build", "export", "import", "hash", "validate",
		"ffsub", "size", "insert", "derive", "flow")
	for _, target := range targets {
		row, err := ScalePipeline(ctx, target, parallelism)
		if err != nil {
			return fmt.Errorf("scale %d: %w", target, err)
		}
		fmt.Fprintf(w, "%10d %10d %9s %9s %9s %9s %9s %9s %9s %9s %9s %9s\n",
			row.Insts, row.Nets,
			round(row.Build), round(row.Export), round(row.Import),
			round(row.Hash), round(row.Validate),
			round(row.Stages[core.StageSubstitute]), round(row.Stages[core.StageSize]),
			round(row.Stages[core.StageGenerate]), round(row.Derive), round(row.Flow))
	}
	return nil
}

func round(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1e3)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// SortedStageNames returns the measured stage names in flow order where
// known, for debugging dumps.
func (r *ScaleRow) SortedStageNames() []string {
	names := make([]string, 0, len(r.Stages))
	for s := range r.Stages {
		names = append(names, s)
	}
	sort.Strings(names)
	return names
}
