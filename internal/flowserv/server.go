// Package flowserv runs the clocking-conversion flow as a long-lived HTTP
// job service: clients submit a design (an uploaded gate-level netlist or
// one of the built-in case-study generators) plus flow options, poll or
// stream the job's per-stage progress, and fetch the exported netlist,
// constraints and verification reports from stable artifact URLs.
//
// The server is built from the repo's existing layers rather than beside
// them: jobs execute core.Convert under the request's backend with the
// same gate discipline as cmd/drdesync, a bounded queue with per-job
// worker budgets layers on internal/par, and a content-addressed LRU
// cache keyed on the canonical netlist hash plus canonicalized options
// serves byte-identical artifacts for repeated submissions — the
// cross-request analogue of ctrlnet's ModSeq memoization, sound because
// every kernel in the repo produces identical output at any parallelism.
// Identical submissions racing in before a result exists are deduplicated
// at admission: the duplicate attaches to the in-flight leader and copies
// its terminal outcome instead of running the flow again.
package flowserv

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"desync/internal/par"
)

// Config sizes the server. The zero value of every field selects a
// documented default, so Config{} is a working configuration.
type Config struct {
	// QueueDepth bounds the number of admitted-but-not-running jobs;
	// submissions past the bound get 503. 0 means 16.
	QueueDepth int
	// Workers is the number of jobs run concurrently. 0 means 2.
	Workers int
	// JobParallelism is the per-job worker budget handed to the flow's
	// parallel kernels; a request's options.j is clamped to it. 0 means
	// GOMAXPROCS (via par.Workers).
	JobParallelism int
	// CacheEntries bounds the content-addressed result cache. 0 means 64.
	CacheEntries int
	// MaxUploadBytes bounds a POST /jobs body. 0 means 4 MiB.
	MaxUploadBytes int64
	// DrainGrace is how long running jobs may keep going after drain
	// begins before their contexts are canceled. 0 means 5s.
	DrainGrace time.Duration
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	c.JobParallelism = par.Workers(c.JobParallelism)
	if c.CacheEntries <= 0 {
		c.CacheEntries = 64
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 4 << 20
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 5 * time.Second
	}
	return c
}

// ServerStats is the GET /stats body.
type ServerStats struct {
	Queued   int        `json:"queued"`
	Running  int        `json:"running"`
	Done     int        `json:"done"`
	Failed   int        `json:"failed"`
	Canceled int        `json:"canceled"`
	// Attached counts submissions that rode an identical in-flight run
	// instead of queueing their own (cumulative).
	Attached int        `json:"attached"`
	Draining bool       `json:"draining"`
	Cache    CacheStats `json:"cache"`
}

// Server is the flow job service. Create with New, attach to a listener
// with Serve, or mount Handler in a test server.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	results *cache

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // ids in admission order — the deterministic job log
	nextID   int
	queue    chan *job
	draining bool
	// inflight maps a cache key to the job currently computing it (queued
	// or running). An identical submission arriving meanwhile attaches to
	// this leader instead of queueing a duplicate run — the in-flight
	// analogue of the result cache.
	inflight map[string]*job
	attached int // total follower submissions, for /stats
}

// New builds a server from cfg (zero fields take the documented defaults).
func New(cfg Config) *Server {
	s := &Server{
		cfg:     cfg.withDefaults(),
		results:  newCache(cfg.withDefaults().CacheEntries),
		jobs:     map[string]*job{},
		inflight: map[string]*job{},
		nextID:   1,
	}
	s.queue = make(chan *job, s.cfg.QueueDepth)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/artifacts/{name}", s.handleArtifact)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux = mux
	return s
}

// Handler exposes the route table, for httptest servers.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve runs the service on ln until ctx is canceled, then drains: new
// submissions get 503, queued jobs are canceled, running jobs get
// DrainGrace to finish before their contexts are canceled, and the HTTP
// listener shuts down gracefully once every job is terminal.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	// Job lifetimes are decoupled from ctx on purpose: drain cancels them
	// on its own schedule, after the grace period.
	jobsCtx, jobsCancel := context.WithCancel(context.Background())
	defer jobsCancel()
	var wg sync.WaitGroup
	for i := 0; i < s.cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range s.queue {
				s.runJob(jobsCtx, j)
			}
		}()
	}

	srv := &http.Server{Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		// The listener died on its own; reap the workers and report.
		s.beginDrain()
		jobsCancel()
		wg.Wait()
		return err
	case <-ctx.Done():
	}

	s.beginDrain()
	workersDone := make(chan struct{})
	go func() { wg.Wait(); close(workersDone) }()
	select {
	case <-workersDone:
	case <-time.After(s.cfg.DrainGrace):
		jobsCancel()
		<-workersDone
	}
	shCtx, shCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer shCancel()
	return srv.Shutdown(shCtx)
}

// beginDrain stops admissions, cancels every still-queued job and closes
// the queue so workers exit once it is empty. Idempotent.
func (s *Server) beginDrain() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	queued := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		queued = append(queued, s.jobs[id])
	}
	close(s.queue)
	s.mu.Unlock()
	// Cancel outside the lock: queued jobs terminate immediately, ones a
	// worker already started are left to the grace period. Followers are
	// skipped — they terminate with their leader, which the grace period
	// already bounds (a queued leader is canceled right here, a running one
	// at the grace deadline).
	for _, j := range queued {
		j.mu.Lock()
		isQueued := j.state == StateQueued && j.attached == ""
		j.mu.Unlock()
		if isQueued {
			j.cancel("server draining")
		}
	}
}

// runJob executes one dequeued job to a terminal state.
func (s *Server) runJob(ctx context.Context, j *job) {
	defer s.clearInflight(j)
	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if !j.start(cancel) {
		return // canceled while queued
	}
	arts, err := runGuarded(jctx, j, s.jobBudget(j.req))
	switch {
	case err == nil:
		s.results.put(&entry{key: j.key, artifacts: arts})
		j.finish(StateDone, "", arts, false)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.finish(StateCanceled, err.Error(), arts, false)
	default:
		j.finish(StateFailed, err.Error(), arts, false)
	}
}

// clearInflight drops the job's singleflight registration once it can no
// longer be attached to. Runs for every dequeued job, including ones
// canceled while queued (start fails, the run is skipped, the entry must
// still go); the identity check keeps a later leader under the same key
// safe from a stale clear.
func (s *Server) clearInflight(j *job) {
	s.mu.Lock()
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	s.mu.Unlock()
}

// jobBudget clamps a request's parallelism ask to the server's per-job
// budget; 0 or over-budget requests get the full budget.
func (s *Server) jobBudget(req *JobRequest) int {
	if w := req.Options.Parallelism; w > 0 && w < s.cfg.JobParallelism {
		return w
	}
	return s.cfg.JobParallelism
}

func (s *Server) jobByID(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the client hanging up is not our error
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// handleSubmit admits one job: parse, validate, build the input design,
// compute its content address, then either serve the cached result
// instantly or enqueue a fresh run.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	var req JobRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	if err := req.validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	req.normalize()
	d, err := req.buildDesign()
	if err != nil {
		writeError(w, http.StatusBadRequest, "building input design: "+err.Error())
		return
	}
	key, err := cacheKey(d, req.Options)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	id := fmt.Sprintf("j%d", s.nextID)
	j := newJob(id, &req, key, d)
	if e, ok := s.results.get(key); ok {
		s.nextID++
		s.jobs[id] = j
		s.order = append(s.order, id)
		s.mu.Unlock()
		j.finish(StateDone, "", e.artifacts, true)
		writeJSON(w, http.StatusOK, j.status())
		return
	}
	// Singleflight: an identical submission already queued or running
	// becomes a follower of that leader — no duplicate run, no queue slot.
	// The follower terminates with the leader's outcome (including
	// cancellation: attaching means sharing the leader's fate).
	if leader, ok := s.inflight[key]; ok && !leader.isTerminal() {
		s.nextID++
		s.jobs[id] = j
		s.order = append(s.order, id)
		j.attach(leader.id)
		s.attached++
		s.mu.Unlock()
		go func() {
			<-leader.done
			state, msg, arts := leader.outcome()
			j.finish(state, msg, arts, false)
		}()
		writeJSON(w, http.StatusAccepted, j.status())
		return
	}
	select {
	case s.queue <- j:
		s.nextID++
		s.jobs[id] = j
		s.order = append(s.order, id)
		s.inflight[key] = j
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, j.status())
	default:
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("job queue full (%d queued)", s.cfg.QueueDepth))
	}
}

// handleList reports every admitted job id in admission order — the
// deterministic job log.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	statuses := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		statuses = append(statuses, s.jobs[id].status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, statuses)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleEvents streams the job's progress as NDJSON, one Event per line,
// from the beginning of the job, ending when the job reaches a terminal
// state or the client hangs up.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	next := 0
	for {
		evs, changed, terminal := j.eventsFrom(next)
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		next += len(evs)
		if fl != nil {
			fl.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// handleArtifact serves one named artifact's bytes exactly as the flow (or
// the cache) recorded them.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	name := r.PathValue("name")
	b, ok := j.snapshotArtifacts()[name]
	if !ok {
		writeError(w, http.StatusNotFound, "no such artifact")
		return
	}
	ctype := "text/plain; charset=utf-8"
	if strings.HasSuffix(name, ".json") {
		ctype = "application/json"
	}
	w.Header().Set("Content-Type", ctype)
	w.WriteHeader(http.StatusOK)
	w.Write(b) //nolint:errcheck // the client hanging up is not our error
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	j.cancel("canceled by client")
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := ServerStats{Cache: s.results.stats()}
	s.mu.Lock()
	st.Draining = s.draining
	st.Attached = s.attached
	for _, id := range s.order {
		switch s.jobs[id].status().State {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		case StateDone:
			st.Done++
		case StateFailed:
			st.Failed++
		case StateCanceled:
			st.Canceled++
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
