package sweep_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"desync/internal/expt"
	"desync/internal/faults"
	"desync/internal/logic"
	"desync/internal/sim"
	"desync/internal/sweep"
)

// The DLX flow is expensive; every sweep test shares one desynchronized
// design and one campaign (sweep scenarios never mutate either).
var (
	once     sync.Once
	flow     *expt.DLXFlow
	campaign *faults.Campaign
	buildErr error
)

func dlxCampaign(t *testing.T) *faults.Campaign {
	t.Helper()
	once.Do(func() {
		flow, buildErr = expt.RunDLXFlow(expt.FlowConfig{})
		if buildErr != nil {
			return
		}
		campaign, buildErr = expt.NewDLXCampaign(context.Background(), flow, 6, 0)
	})
	if buildErr != nil {
		t.Fatalf("building DLX campaign: %v", buildErr)
	}
	return campaign
}

// TestSweepSurfaceDLX runs a small corner × chip × fault product on the
// DLX and checks the surface's shape: every cell completes, the per-corner
// tallies match the space, control stuck-ats stay detected at the worst
// corner with mismatch on top, and the period quantiles are populated.
func TestSweepSurfaceDLX(t *testing.T) {
	c := dlxCampaign(t)
	fs := c.ControlStuckFaults("mri")
	if len(fs) == 0 {
		t.Fatal("no faults enumerated")
	}
	rep, err := sweep.Run(context.Background(), c, sweep.Config{
		Space: sweep.Space{Corners: []float64{1, 2.5}, Chips: 2, Sigma: 0.05, Faults: fs},
		Seed:  17,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * 2 * len(fs)
	if rep.Total != want || rep.Done != want || rep.FailureCount != 0 {
		t.Fatalf("total %d done %d failures %d, want %d clean", rep.Total, rep.Done, rep.FailureCount, want)
	}
	for _, cs := range rep.CornerStats {
		if cs.Injected != 2*len(fs) {
			t.Fatalf("corner %d injected %d, want %d", cs.Corner, cs.Injected, 2*len(fs))
		}
		if cs.Detected != cs.Injected {
			t.Errorf("corner %d (scale %.2f): %d/%d stuck faults detected\n%s",
				cs.Corner, cs.Scale, cs.Detected, cs.Injected, rep.Render())
		}
		if cs.RateLo <= 0 || cs.RateHi != 1 {
			t.Errorf("corner %d interval [%v,%v]", cs.Corner, cs.RateLo, cs.RateHi)
		}
		if cs.PeriodN == 0 || cs.PeriodP50 <= 0 || cs.PeriodP99 < cs.PeriodP50 {
			t.Errorf("corner %d period quantiles n=%d p50=%v p99=%v",
				cs.Corner, cs.PeriodN, cs.PeriodP50, cs.PeriodP99)
		}
	}
}

// sweepJSON renders a report to bytes for byte-identity comparison.
func sweepJSON(t *testing.T, rep *sweep.Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSweepCrashResumeDLX is the durability acceptance test: a sweep
// killed mid-run after at least one checkpointed record, resumed from its
// journal at a different worker count, must produce the same final report
// byte for byte as an uninterrupted serial run.
func TestSweepCrashResumeDLX(t *testing.T) {
	c := dlxCampaign(t)
	fs := c.ControlStuckFaults("mri", "sai")
	space := sweep.Space{Corners: []float64{1, 1.6}, Chips: 1, Faults: fs}
	total := space.Size()
	if total < 10 {
		t.Fatalf("space too small for the test: %d", total)
	}

	// Reference: uninterrupted, serial, no journal.
	ref, err := sweep.Run(context.Background(), c, sweep.Config{Space: space, Seed: 3, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	refJSON := sweepJSON(t, ref)

	// Interrupted run: cancel (the in-process stand-in for SIGTERM — the
	// CLI routes the signal into this same context) once a third of the
	// sweep is journaled, at parallelism 4.
	journal := filepath.Join(t.TempDir(), "dlx.journal")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cut := total / 3
	if cut < 1 {
		cut = 1
	}
	_, err = sweep.Run(ctx, c, sweep.Config{
		Space: space, Seed: 3, Parallelism: 4,
		Checkpoint: journal, FsyncEvery: 2,
		Progress: func(done, _ int) {
			if done >= cut {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep returned %v, want context.Canceled", err)
	}
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	_, recs, _, err := sweep.ReadJournal(data)
	if err != nil {
		t.Fatalf("journal after cancellation: %v", err)
	}
	if len(recs) < cut || len(recs) >= total {
		t.Fatalf("journal holds %d records after cancelling at %d of %d", len(recs), cut, total)
	}

	// Resume at parallelism 4: replay the prefix, compute the tail.
	res, err := sweep.Run(context.Background(), c, sweep.Config{
		Space: space, Seed: 3, Parallelism: 4,
		Checkpoint: journal, Resume: true, FsyncEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sweepJSON(t, res); !bytes.Equal(refJSON, got) {
		t.Fatalf("resumed report differs from uninterrupted run:\n--- uninterrupted\n%s\n--- resumed\n%s", refJSON, got)
	}

	// The journal now covers the whole space; resuming again replays
	// everything and computes nothing — and still matches.
	again, err := sweep.Run(context.Background(), c, sweep.Config{
		Space: space, Seed: 3, Parallelism: 1,
		Checkpoint: journal, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sweepJSON(t, again); !bytes.Equal(refJSON, got) {
		t.Fatal("replay-only resume diverged")
	}
}

// panickingCampaign builds a second DLX campaign whose stimulus behaves
// for the golden run, then panics on every scenario after it — the way a
// latent simulator bug surfaces in cell 7341 of a big sweep.
func panickingCampaign(t *testing.T) *faults.Campaign {
	t.Helper()
	c := dlxCampaign(t) // ensure the shared flow exists
	_ = c
	var calls atomic.Int32
	stim := func(s *sim.Simulator) error {
		if calls.Add(1) > 1 {
			panic("injected scenario panic")
		}
		if flow.Desync.Top.Port("delsel[0]") != nil {
			for i := 0; i < 3; i++ {
				if err := s.Drive(fmt.Sprintf("delsel[%d]", i), logic.L, 0); err != nil {
					return err
				}
			}
		}
		s.Drive("rstn", logic.L, 0)
		s.Drive("rst_desync", logic.H, 0)
		s.Drive("rstn", logic.H, 1)
		return s.Drive("rst_desync", logic.L, 2)
	}
	pc, err := faults.NewCampaign(context.Background(), flow.Desync.Top, faults.Config{
		Stimulus:      stim,
		Horizon:       2 + flow.Period*6*6,
		QuiescenceGap: 8 * flow.Period,
		SetupGuard:    true,
	})
	if err != nil {
		t.Fatalf("building panicking campaign: %v", err)
	}
	return pc
}

// TestSweepQuarantinesPanics: panicking scenarios become records; the
// sweep finishes every cell and reports the failures.
func TestSweepQuarantinesPanics(t *testing.T) {
	pc := panickingCampaign(t)
	fs := pc.ControlStuckFaults("mri")[:2]
	rep, err := sweep.Run(context.Background(), pc, sweep.Config{
		Space: sweep.Space{Corners: []float64{1}, Chips: 2, Sigma: 0.05, Faults: fs},
		Seed:  5, Parallelism: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done != 4 || rep.FailureCount != 4 {
		t.Fatalf("done %d failures %d, want 4 quarantined of 4\n%s", rep.Done, rep.FailureCount, rep.Render())
	}
	for _, f := range rep.Failures {
		if f.Kind != sweep.KindPanic {
			t.Fatalf("failure %d has kind %q, want panic", f.Index, f.Kind)
		}
	}
}

// TestSweepMaxFailuresStops: the failure budget turns a pathological sweep
// into a graceful early stop with an exact journaled prefix.
func TestSweepMaxFailuresStops(t *testing.T) {
	pc := panickingCampaign(t)
	fs := pc.ControlStuckFaults("mri")
	journal := filepath.Join(t.TempDir(), "stop.journal")
	rep, err := sweep.Run(context.Background(), pc, sweep.Config{
		Space: sweep.Space{Corners: []float64{1, 2}, Chips: 1, Faults: fs},
		Seed:  5, Parallelism: 3, MaxFailures: 3, Checkpoint: journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.EarlyStopped || rep.Done != 3 || rep.FailureCount != 3 {
		t.Fatalf("early stop: stopped=%v done=%d failures=%d, want 3", rep.EarlyStopped, rep.Done, rep.FailureCount)
	}
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if _, recs, _, err := sweep.ReadJournal(data); err != nil || len(recs) != 3 {
		t.Fatalf("journal holds %d records (%v), want the exact stopped prefix of 3", len(recs), err)
	}
}

// TestSweepScenarioTimeout: a wall-clock deadline quarantines the slow
// scenario through the simulator's interrupt hook instead of hanging the
// sweep.
func TestSweepScenarioTimeout(t *testing.T) {
	c := dlxCampaign(t)
	fs := c.ControlStuckFaults("mri")[:1]
	rep, err := sweep.Run(context.Background(), c, sweep.Config{
		Space:           sweep.Space{Corners: []float64{1}, Chips: 1, Faults: fs},
		Seed:            5,
		ScenarioTimeout: time.Nanosecond, // everything is too slow
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done != 1 || rep.FailureCount != 1 || rep.Failures[0].Kind != sweep.KindTimeout {
		t.Fatalf("timeout not quarantined: %+v", rep.Failures)
	}
	if rep.CornerStats[0].Timeouts != 1 {
		t.Fatalf("corner stats missed the timeout: %+v", rep.CornerStats[0])
	}
}
