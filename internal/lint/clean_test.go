package lint_test

import (
	"context"
	"testing"

	"desync/internal/core"
	"desync/internal/designs"
	"desync/internal/dft"
	"desync/internal/expt"
	"desync/internal/lint"
	"desync/internal/stdcells"
)

// mustClean fails the test when the report carries anything at Warning
// severity or above; Info findings are advisory and allowed.
func mustClean(t *testing.T, what string, rep *lint.Report) {
	t.Helper()
	if rep.Count(lint.Warning) != 0 {
		t.Errorf("%s is not lint-clean:\n%s", what, rep.Text())
	}
}

// TestDLXGoldenFlowLintsClean is the engine's anchor: the DLX case study
// must produce zero findings before desynchronization (netlist rules) and
// zero findings after (netlist + control-network rules cross-checked
// against the generated constraints).
func TestDLXGoldenFlowLintsClean(t *testing.T) {
	f, err := expt.RunDLXFlow(expt.FlowConfig{})
	if err != nil {
		t.Fatal(err)
	}
	mustClean(t, "synchronous DLX", lint.Check(f.Sync.Top, lint.Options{}))
	mustClean(t, "desynchronized DLX", lint.Check(f.Desync.Top, lint.Options{
		Desync:      true,
		Constraints: f.Result.Constraints,
	}))
}

// TestARMGoldenFlowLintsClean covers the second case study: the scan-
// inserted ARM-class design, desynchronized as a single manual region
// (§5.3), pre and post.
func TestARMGoldenFlowLintsClean(t *testing.T) {
	lib := stdcells.New(stdcells.LowLeakage)
	d, err := designs.BuildARMLike(lib, 42)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dft.InsertScan(d); err != nil {
		t.Fatal(err)
	}
	mustClean(t, "synchronous ARM", lint.Check(d.Top, lint.Options{}))

	res, err := core.Desynchronize(context.Background(), d, core.Options{Period: 5.0, ManualGroups: true})
	if err != nil {
		t.Fatal(err)
	}
	mustClean(t, "desynchronized ARM", lint.Check(d.Top, lint.Options{
		Desync:      true,
		Constraints: res.Constraints,
	}))
}

// TestDelayFaultsFlaggedStatically closes the loop with the dynamic fault
// campaigns: every delay fault the DLX campaign would inject and then have
// to catch in simulation is already flagged by the static under-margin
// rule, with zero vectors run. The campaign is only used as the fault
// generator here; each fault's factor is applied in memory, linted, and
// restored.
func TestDelayFaultsFlaggedStatically(t *testing.T) {
	f, err := expt.RunDLXFlow(expt.FlowConfig{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := expt.NewDLXCampaign(context.Background(), f, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	fts := c.DelayFaults(40, 2)
	if len(fts) != 8 {
		t.Fatalf("campaign generated %d delay faults, want 8", len(fts))
	}
	for _, ft := range fts {
		in := f.Desync.Top.Inst(ft.Inst)
		if in == nil {
			t.Fatalf("fault targets unknown instance %s", ft.Inst)
		}
		old := in.DelayFactor
		base := old
		if base == 0 {
			base = 1
		}
		in.DelayFactor = base * ft.Factor
		rep := lint.Check(f.Desync.Top, lint.Options{
			Desync:      true,
			Constraints: f.Result.Constraints,
		})
		if len(rep.ByRule(lint.RuleMargin)) == 0 {
			t.Errorf("delay fault %v not flagged by %s:\n%s", ft, lint.RuleMargin, rep.Text())
		}
		in.DelayFactor = old
	}
	// With every factor restored the design is clean again: the checks
	// above measured the faults, not leftover state.
	mustClean(t, "restored DLX", lint.Check(f.Desync.Top, lint.Options{
		Desync:      true,
		Constraints: f.Result.Constraints,
	}))
}
