package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"desync/internal/core"
	"desync/internal/designs"
	"desync/internal/equiv"
	"desync/internal/expt"
	"desync/internal/stdcells"
	"desync/internal/verilog"
)

// TestEquivGateEndToEnd desynchronizes the DLX through run() with the
// formal gate enabled: the freshly inserted control network must prove all
// three properties, so the run exits clean.
func TestEquivGateEndToEnd(t *testing.T) {
	dir := t.TempDir()
	lib := stdcells.New(stdcells.HighSpeed)
	d, err := designs.BuildDLX(lib, designs.TestProgram())
	if err != nil {
		t.Fatal(err)
	}
	in := filepath.Join(dir, "dlx.v")
	if err := os.WriteFile(in, []byte(verilog.Write(d)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), runOpts{
		in: in, libVariant: "HS", out: filepath.Join(dir, "ddlx.v"),
		period: 4.65, margin: 1.15, equivGate: true, equivXval: 1, equivSeed: 5,
	}); err != nil {
		t.Fatalf("run with -equiv failed: %v", err)
	}
}

// TestEquivGateFailsBrokenNetwork feeds the gate a control network with a
// cut acknowledge and checks the failure carries the equiv flow stage and
// names the violated property.
func TestEquivGateFailsBrokenNetwork(t *testing.T) {
	f, err := expt.RunDLXFlow(expt.FlowConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ai := f.Desync.Top.Inst("G2_Mctrl/ai")
	if ai == nil {
		t.Fatal("G2_Mctrl/ai not found")
	}
	f.Desync.Top.Disconnect(ai, "Z")

	var out, errb bytes.Buffer
	err = equivGate(context.Background(), f.Desync, nil, runOpts{}, &out, &errb)
	if err == nil {
		t.Fatal("equiv gate passed a deadlocking network")
	}
	if core.StageOf(err) != core.StageEquiv {
		t.Fatalf("stage = %q, want %q (err: %v)", core.StageOf(err), core.StageEquiv, err)
	}
	if !strings.Contains(errb.String(), equiv.RuleDeadlock) {
		t.Errorf("findings do not name %s:\n%s", equiv.RuleDeadlock, errb.String())
	}
}
