package netlist

import (
	"fmt"
	"sort"
	"strings"
)

// PinRef identifies one endpoint of a net: a pin of an instance, or (when
// Inst is nil) a port of the enclosing module.
type PinRef struct {
	Inst *Inst  // nil for module ports
	Pin  string // instance pin name or module port name
}

// String renders inst/pin or the bare port name.
func (r PinRef) String() string {
	if r.Inst == nil {
		return r.Pin
	}
	return r.Inst.Name + "/" + r.Pin
}

// Net is a single-bit wire. A net has at most one driver (instance output or
// module input port) and any number of sinks.
type Net struct {
	Name      string
	Driver    PinRef   // zero value (Inst==nil, Pin=="") means undriven
	Sinks     []PinRef // instance inputs and module output ports
	FalsePath bool     // marked via drdesync's command line to be ignored by grouping (§3.2.2)

	// Wire is the interconnect delay annotated by placement & routing;
	// zero before layout. Applied to every driver→sink hop of the net.
	Wire Delay
}

// HasDriver reports whether the net has a driver.
func (n *Net) HasDriver() bool { return n.Driver.Inst != nil || n.Driver.Pin != "" }

// BusBase splits a bit-blasted bus net name "data[3]" into ("data", 3, true).
// Names without a [index] suffix return ok=false. The grouping bus heuristic
// (§3.2.2) relies on this: it only works when the synthesis tool has kept
// bus[n] naming rather than collapsing to bus_n.
func BusBase(name string) (base string, index int, ok bool) {
	if !strings.HasSuffix(name, "]") {
		return "", 0, false
	}
	i := strings.LastIndexByte(name, '[')
	if i < 0 {
		return "", 0, false
	}
	idx := 0
	digits := name[i+1 : len(name)-1]
	if digits == "" {
		return "", 0, false
	}
	for _, c := range digits {
		if c < '0' || c > '9' {
			return "", 0, false
		}
		idx = idx*10 + int(c-'0')
	}
	return name[:i], idx, true
}

// Inst is an instance of a library cell or of a submodule (exactly one of
// Cell and Sub is non-nil). Conns maps the cell/submodule pin name to the
// connected net in the enclosing module.
type Inst struct {
	Name  string
	Cell  *CellDef
	Sub   *Module
	Conns map[string]*Net

	// Group is the desynchronization region this instance belongs to;
	// -1 before grouping. Group 0 is the paper's catch-all region for
	// sequential elements registering circuit inputs.
	Group int

	// SizeOnly marks controller-internal gates that backend optimization may
	// resize but not restructure (§4.6.2).
	SizeOnly bool

	// Origin records which flow step created the instance ("" for cells
	// present in the imported netlist): "ffsub" for flip-flop substitution
	// products, "ctrl" for controller-network cells, "delem" for delay
	// elements, "cts" for enable-tree buffers, "scan" for DFT. The area
	// tables of §5 attribute "ffsub" gates to sequential logic, matching the
	// paper's accounting for the ARM scan design.
	Origin string

	// DelayFactor is this instance's intra-die variability multiplier applied
	// to all its timing arcs during simulation; 1.0 nominal.
	DelayFactor float64
}

// CellName returns the library cell or submodule name.
func (in *Inst) CellName() string {
	if in.Cell != nil {
		return in.Cell.Name
	}
	return in.Sub.Name
}

// Port is a module-level port bound to an internal net of the same name.
type Port struct {
	Name string
	Dir  PinDir
	Net  *Net
}

// Module is a netlist: ports, nets and instances. Designs straight out of
// synthesis are flat modules of library cells; the Verilog reader may also
// build two-level hierarchies which Flatten collapses.
type Module struct {
	Name  string
	Ports []*Port
	Nets  []*Net
	Insts []*Inst

	netByName  map[string]*Net
	instByName map[string]*Inst

	// modseq counts structural mutations (nets, ports, instances,
	// connectivity). Derivation caches keyed on the module compare it to
	// decide whether a cached analysis is still valid.
	modseq uint64
}

// ModSeq returns the module's structural mutation counter. Two calls
// returning the same value bracket a window with no structural change, so an
// analysis derived inside it is still valid.
func (m *Module) ModSeq() uint64 { return m.modseq }

// NewModule returns an empty module.
func NewModule(name string) *Module {
	return &Module{
		Name:       name,
		netByName:  map[string]*Net{},
		instByName: map[string]*Inst{},
	}
}

// AddNet creates a new named net. It is an error (panic) to reuse a name.
func (m *Module) AddNet(name string) *Net {
	if _, dup := m.netByName[name]; dup {
		panic(fmt.Sprintf("netlist: duplicate net %q in module %s", name, m.Name))
	}
	m.modseq++
	n := &Net{Name: name}
	m.Nets = append(m.Nets, n)
	m.netByName[name] = n
	return n
}

// Net returns the named net or nil.
func (m *Module) Net(name string) *Net { return m.netByName[name] }

// EnsureNet returns the named net, creating it if needed.
func (m *Module) EnsureNet(name string) *Net {
	if n := m.netByName[name]; n != nil {
		return n
	}
	return m.AddNet(name)
}

// AddPort declares a module port and binds it to a same-named net (creating
// the net if necessary). Input ports drive their net; output ports sink it.
func (m *Module) AddPort(name string, dir PinDir) *Port {
	n := m.EnsureNet(name)
	m.modseq++
	p := &Port{Name: name, Dir: dir, Net: n}
	m.Ports = append(m.Ports, p)
	switch dir {
	case In:
		n.Driver = PinRef{Pin: name}
	case Out:
		n.Sinks = append(n.Sinks, PinRef{Pin: name})
	}
	return p
}

// AddPortOnNet declares a port bound to an existing net whose name may
// differ from the port's (used by the Verilog reader when assign aliases
// merge a port with another net).
func (m *Module) AddPortOnNet(name string, dir PinDir, n *Net) (*Port, error) {
	m.modseq++
	p := &Port{Name: name, Dir: dir, Net: n}
	m.Ports = append(m.Ports, p)
	switch dir {
	case In:
		if n.HasDriver() {
			return nil, fmt.Errorf("netlist: input port %s on already-driven net %s", name, n.Name)
		}
		n.Driver = PinRef{Pin: name}
	case Out:
		n.Sinks = append(n.Sinks, PinRef{Pin: name})
	}
	return p, nil
}

// Port returns the named port or nil.
func (m *Module) Port(name string) *Port {
	for _, p := range m.Ports {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// AddInst creates an instance of a library cell with no connections.
func (m *Module) AddInst(name string, cell *CellDef) *Inst {
	return m.addInst(&Inst{Name: name, Cell: cell, Conns: map[string]*Net{}, Group: -1, DelayFactor: 1})
}

// AddSubInst creates an instance of a submodule.
func (m *Module) AddSubInst(name string, sub *Module) *Inst {
	return m.addInst(&Inst{Name: name, Sub: sub, Conns: map[string]*Net{}, Group: -1, DelayFactor: 1})
}

func (m *Module) addInst(in *Inst) *Inst {
	if _, dup := m.instByName[in.Name]; dup {
		panic(fmt.Sprintf("netlist: duplicate instance %q in module %s", in.Name, m.Name))
	}
	m.modseq++
	m.Insts = append(m.Insts, in)
	m.instByName[in.Name] = in
	return in
}

// Inst returns the named instance or nil.
func (m *Module) Inst(name string) *Inst { return m.instByName[name] }

// Connect attaches pin of inst to net, updating the net's driver/sink lists
// according to the pin direction. Connecting an output pin to an
// already-driven net is an error.
func (m *Module) Connect(in *Inst, pin string, net *Net) error {
	dir, err := m.pinDir(in, pin)
	if err != nil {
		return err
	}
	if old := in.Conns[pin]; old != nil {
		return fmt.Errorf("netlist: %s/%s already connected to %s", in.Name, pin, old.Name)
	}
	m.modseq++
	in.Conns[pin] = net
	ref := PinRef{Inst: in, Pin: pin}
	if dir == Out {
		if net.HasDriver() {
			return fmt.Errorf("netlist: net %s has two drivers: %s and %s", net.Name, net.Driver, ref)
		}
		net.Driver = ref
	} else {
		net.Sinks = append(net.Sinks, ref)
	}
	return nil
}

// MustConnect is Connect that panics on error; for programmatic generators.
func (m *Module) MustConnect(in *Inst, pin string, net *Net) {
	if err := m.Connect(in, pin, net); err != nil {
		panic(err)
	}
}

// Disconnect removes the connection of pin on inst from its net.
func (m *Module) Disconnect(in *Inst, pin string) {
	net := in.Conns[pin]
	if net == nil {
		return
	}
	m.modseq++
	delete(in.Conns, pin)
	ref := PinRef{Inst: in, Pin: pin}
	if net.Driver == ref {
		net.Driver = PinRef{}
		return
	}
	for i, s := range net.Sinks {
		if s == ref {
			net.Sinks = append(net.Sinks[:i], net.Sinks[i+1:]...)
			return
		}
	}
}

// RemoveInst removes the instance and all its connections.
func (m *Module) RemoveInst(in *Inst) {
	for pin := range in.Conns {
		m.Disconnect(in, pin)
	}
	m.modseq++
	delete(m.instByName, in.Name)
	for i, x := range m.Insts {
		if x == in {
			m.Insts = append(m.Insts[:i], m.Insts[i+1:]...)
			return
		}
	}
}

// RemoveNet removes an unconnected net.
func (m *Module) RemoveNet(n *Net) error {
	if n.HasDriver() || len(n.Sinks) > 0 {
		return fmt.Errorf("netlist: net %s still connected", n.Name)
	}
	m.modseq++
	delete(m.netByName, n.Name)
	for i, x := range m.Nets {
		if x == n {
			m.Nets = append(m.Nets[:i], m.Nets[i+1:]...)
			break
		}
	}
	return nil
}

// RenameNet changes a net's name, keeping lookups consistent. The new name
// must be free.
func (m *Module) RenameNet(n *Net, name string) error {
	if _, taken := m.netByName[name]; taken {
		return fmt.Errorf("netlist: net name %q already in use", name)
	}
	m.modseq++
	delete(m.netByName, n.Name)
	n.Name = name
	m.netByName[name] = n
	return nil
}

// ReplaceSinks moves every sink of from onto to (drivers are untouched).
// Used by logic cleaning when a buffer is removed.
func (m *Module) ReplaceSinks(from, to *Net) {
	m.modseq++
	for _, s := range from.Sinks {
		if s.Inst != nil {
			s.Inst.Conns[s.Pin] = to
		} else {
			// Module output port: rebind the port to the surviving net.
			if p := m.Port(s.Pin); p != nil {
				p.Net = to
			}
		}
		to.Sinks = append(to.Sinks, s)
	}
	from.Sinks = nil
}

func (m *Module) pinDir(in *Inst, pin string) (PinDir, error) {
	if in.Cell != nil {
		pd := in.Cell.Pin(pin)
		if pd == nil {
			return In, fmt.Errorf("netlist: cell %s has no pin %q", in.Cell.Name, pin)
		}
		return pd.Dir, nil
	}
	p := in.Sub.Port(pin)
	if p == nil {
		return In, fmt.Errorf("netlist: module %s has no port %q", in.Sub.Name, pin)
	}
	return p.Dir, nil
}

// Check validates structural sanity: every instance pin connected, every net
// with sinks has a driver, no unknown pins. It returns all problems found.
func (m *Module) Check() []error {
	var errs []error
	for _, in := range m.Insts {
		var pins []PinDef
		if in.Cell != nil {
			pins = in.Cell.Pins
		} else {
			for _, p := range in.Sub.Ports {
				pins = append(pins, PinDef{Name: p.Name, Dir: p.Dir})
			}
		}
		for _, p := range pins {
			if in.Conns[p.Name] == nil {
				errs = append(errs, fmt.Errorf("%s: unconnected pin %s/%s", m.Name, in.Name, p.Name))
			}
		}
	}
	for _, n := range m.Nets {
		if len(n.Sinks) > 0 && !n.HasDriver() {
			errs = append(errs, fmt.Errorf("%s: net %s has sinks but no driver", m.Name, n.Name))
		}
	}
	return errs
}

// Stats summarizes a module for the area tables of §5.
type Stats struct {
	Nets       int
	Cells      int
	CellArea   float64 // total standard-cell area, µm²
	CombArea   float64
	SeqArea    float64
	FFs        int
	Latches    int
	CombGates  int
	OtherCells int
}

// ComputeStats walks the (flat) module and tallies cell counts and areas.
func (m *Module) ComputeStats() Stats {
	var s Stats
	s.Nets = len(m.Nets)
	for _, in := range m.Insts {
		if in.Cell == nil {
			s.OtherCells++
			continue
		}
		s.Cells++
		s.CellArea += in.Cell.Area
		switch in.Cell.Kind {
		case KindFF:
			s.FFs++
			s.SeqArea += in.Cell.Area
		case KindLatch:
			s.Latches++
			s.SeqArea += in.Cell.Area
		case KindCElem, KindGC:
			s.SeqArea += in.Cell.Area
		default:
			s.CombGates++
			s.CombArea += in.Cell.Area
		}
	}
	return s
}

// SortedNets returns the nets sorted by name (stable output for writers).
func (m *Module) SortedNets() []*Net {
	out := append([]*Net(nil), m.Nets...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Design couples a top module, its (optional) submodules and the library it
// is mapped to.
type Design struct {
	Name    string
	Top     *Module
	Modules map[string]*Module
	Lib     *Library
}

// NewDesign returns a design with a fresh top-level module of the same name.
func NewDesign(name string, lib *Library) *Design {
	top := NewModule(name)
	return &Design{Name: name, Top: top, Modules: map[string]*Module{name: top}, Lib: lib}
}

// Flatten collapses all submodule instances of the top module into library
// cell instances, prefixing inner names with "<inst>/". The paper's tool
// accepts a two-level netlist whose top contains only flattened submodules
// treated as regions (§3.2.2); Flatten records that origin in the Group
// field when assignGroups is true.
func (d *Design) Flatten(assignGroups bool) error {
	group := 1
	for {
		var sub *Inst
		for _, in := range d.Top.Insts {
			if in.Sub != nil {
				sub = in
				break
			}
		}
		if sub == nil {
			return nil
		}
		g := -1
		if assignGroups {
			g = group
			group++
		}
		if err := d.inline(sub, g); err != nil {
			return err
		}
	}
}

// inline expands one submodule instance into the top module.
func (d *Design) inline(in *Inst, group int) error {
	top, sub := d.Top, in.Sub
	prefix := in.Name + "/"
	// Map each submodule net to a top-level net: port nets bind to the
	// connected outer nets; internal nets get fresh prefixed names.
	netMap := map[*Net]*Net{}
	for _, p := range sub.Ports {
		outer := in.Conns[p.Name]
		if outer == nil {
			return fmt.Errorf("netlist: %s/%s unconnected during flatten", in.Name, p.Name)
		}
		netMap[p.Net] = outer
	}
	for _, n := range sub.Nets {
		if _, ok := netMap[n]; !ok {
			netMap[n] = top.EnsureNet(prefix + n.Name)
		}
	}
	// Remove the submodule instance before re-creating its contents so the
	// outer nets' driver slots are free.
	top.RemoveInst(in)
	for _, si := range sub.Insts {
		var ni *Inst
		if si.Cell != nil {
			ni = top.AddInst(prefix+si.Name, si.Cell)
		} else {
			ni = top.AddSubInst(prefix+si.Name, si.Sub)
		}
		ni.Group = group
		ni.SizeOnly = si.SizeOnly
		for pin, net := range si.Conns {
			if err := top.Connect(ni, pin, netMap[net]); err != nil {
				return err
			}
		}
	}
	return nil
}
