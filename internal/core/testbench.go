package core

import (
	"fmt"
	"strings"

	"desync/internal/netlist"
)

// WriteTestbench generates a behavioural Verilog testbench skeleton for a
// design. For synchronous designs it instantiates a clock generator; for
// desynchronized ones — per §4.8, "the only change needed is the
// replacement of the clock references by corresponding request/acknowledge
// signals" — it drives the desynchronization reset and handshakes any
// environment request/acknowledge ports the tool created for boundary
// regions. res may be nil for the synchronous version.
func WriteTestbench(d *netlist.Design, res *Result, clockPort string, period float64) string {
	m := d.Top
	var sb strings.Builder
	fmt.Fprintf(&sb, "// Generated testbench for %s\n", m.Name)
	fmt.Fprintf(&sb, "`timescale 1ns/1ps\n")
	fmt.Fprintf(&sb, "module tb_%s;\n", m.Name)

	var ins, outs []*netlist.Port
	for _, p := range m.Ports {
		switch p.Dir {
		case netlist.In:
			ins = append(ins, p)
		case netlist.Out:
			outs = append(outs, p)
		}
	}
	for _, p := range ins {
		fmt.Fprintf(&sb, "  reg %s;\n", tbName(p.Name))
	}
	for _, p := range outs {
		fmt.Fprintf(&sb, "  wire %s;\n", tbName(p.Name))
	}
	fmt.Fprintf(&sb, "\n  %s dut (", m.Name)
	for i, p := range m.Ports {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, ".%s(%s)", tbName(p.Name), tbName(p.Name))
	}
	sb.WriteString(");\n\n")

	desync := res != nil
	if !desync && clockPort != "" {
		fmt.Fprintf(&sb, "  // Clock generator\n")
		fmt.Fprintf(&sb, "  initial %s = 0;\n", tbName(clockPort))
		fmt.Fprintf(&sb, "  always #%.4f %s = ~%s;\n\n", period/2, tbName(clockPort), tbName(clockPort))
	}
	fmt.Fprintf(&sb, "  initial begin\n")
	for _, p := range ins {
		if p.Name == clockPort {
			continue
		}
		switch {
		case desync && p.Name == res.Insert.RstPort:
			fmt.Fprintf(&sb, "    %s = 1;\n", tbName(p.Name))
		case strings.Contains(strings.ToLower(p.Name), "rstn") || strings.Contains(strings.ToLower(p.Name), "rn"):
			fmt.Fprintf(&sb, "    %s = 0;\n", tbName(p.Name))
		default:
			fmt.Fprintf(&sb, "    %s = 0;\n", tbName(p.Name))
		}
	}
	fmt.Fprintf(&sb, "    #%.4f;\n", period)
	for _, p := range ins {
		switch {
		case desync && p.Name == res.Insert.RstPort:
			fmt.Fprintf(&sb, "    %s = 0; // release the controller network\n", tbName(p.Name))
		case strings.Contains(strings.ToLower(p.Name), "rstn"):
			fmt.Fprintf(&sb, "    %s = 1;\n", tbName(p.Name))
		}
	}
	fmt.Fprintf(&sb, "    #%.4f $finish;\n", period*200)
	fmt.Fprintf(&sb, "  end\n")

	if desync {
		// Environment handshakes replace the clock references (§4.8).
		for _, port := range res.Insert.EnvRequests {
			fmt.Fprintf(&sb, "\n  // Environment request for a boundary region: assert when input\n")
			fmt.Fprintf(&sb, "  // data is valid, withdraw after the acknowledge.\n")
			fmt.Fprintf(&sb, "  initial begin %s = 0; forever begin #%.4f %s = 1; #%.4f %s = 0; end end\n",
				tbName(port), period, tbName(port), period, tbName(port))
		}
		for _, port := range res.Insert.EnvAcks {
			fmt.Fprintf(&sb, "\n  // Environment acknowledge for a boundary region.\n")
			fmt.Fprintf(&sb, "  initial begin %s = 0; forever begin #%.4f %s = 1; #%.4f %s = 0; end end\n",
				tbName(port), period/2, tbName(port), period/2, tbName(port))
		}
	}
	fmt.Fprintf(&sb, "endmodule\n")
	return sb.String()
}

// tbName flattens bus-bit port names for the behavioural testbench.
func tbName(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '[' || c == ']' || c == '/' || c == '.' {
			out = append(out, '_')
		} else {
			out = append(out, c)
		}
	}
	return string(out)
}
