package liberty

import (
	"strings"
	"testing"

	"desync/internal/logic"
	"desync/internal/netlist"
	"desync/internal/stdcells"
)

func TestParseBasics(t *testing.T) {
	src := `
library (demo) {
  time_unit : "1ns";
  capacitive_load_unit (1, pf);
  cell (INV) {
    area : 2.8; /* comment */
    pin (A) { direction : input; capacitance : 0.002; }
    pin (Z) {
      direction : output;
      function : "!A";
      timing () {
        related_pin : "A";
        cell_rise (scalar) { values ("0.016"); }
        cell_fall (scalar) { values ("0.016"); }
      }
    }
  }
}`
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.Type != "library" || g.Args[0] != "demo" {
		t.Fatalf("library group wrong: %v %v", g.Type, g.Args)
	}
	cells := g.Sub("cell")
	if len(cells) != 1 || cells[0].Args[0] != "INV" {
		t.Fatal("cell group missing")
	}
	if cells[0].Attr("area") != "2.8" {
		t.Fatalf("area = %q", cells[0].Attr("area"))
	}
	pins := cells[0].Sub("pin")
	if len(pins) != 2 {
		t.Fatal("pins missing")
	}
	if pins[1].Attr("function") != "!A" {
		t.Fatalf("function = %q", pins[1].Attr("function"))
	}
	tg := pins[1].First("timing")
	if tg == nil || tg.Attr("related_pin") != "A" {
		t.Fatal("timing group missing")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"library (x) {",
		"library (x) { cell (y) }",
		`library (x) { area  2.8; }`,
		`library (x) { /* unterminated`,
		`library (x) { s : "unterminated; }`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestLineComments(t *testing.T) {
	src := "library (d) {\n// a comment\narea : 1;\n}"
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.Attr("area") != "1" {
		t.Fatal("attribute after comment lost")
	}
}

// The central contract: the synthetic libraries round-trip through Liberty
// text with all flow-relevant information intact. This is the reproduction
// of the paper's gatefile-extraction step (§3.1.1).
func TestRoundTripStdcells(t *testing.T) {
	for _, variant := range []stdcells.Variant{stdcells.HighSpeed, stdcells.LowLeakage} {
		orig := stdcells.New(variant)
		bestSrc := WriteCorner(orig, netlist.Best)
		worstSrc := WriteCorner(orig, netlist.Worst)
		got, err := ReadLibrary(orig.Name, string(variant), bestSrc, worstSrc)
		if err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		if len(got.Cells) != len(orig.Cells) {
			t.Fatalf("%s: %d cells read, want %d", variant, len(got.Cells), len(orig.Cells))
		}
		for name, oc := range orig.Cells {
			gc, ok := got.Cells[name]
			if !ok {
				t.Errorf("%s: cell %s lost", variant, name)
				continue
			}
			compareCells(t, oc, gc)
		}
	}
}

func compareCells(t *testing.T, oc, gc *netlist.CellDef) {
	t.Helper()
	if gc.Kind != oc.Kind {
		t.Errorf("%s: kind %v want %v", oc.Name, gc.Kind, oc.Kind)
	}
	if gc.Area != oc.Area {
		t.Errorf("%s: area %g want %g", oc.Name, gc.Area, oc.Area)
	}
	if !close(gc.Energy, oc.Energy) {
		t.Errorf("%s: energy %g want %g", oc.Name, gc.Energy, oc.Energy)
	}
	if !close(gc.Leakage.Best, oc.Leakage.Best) || !close(gc.Leakage.Worst, oc.Leakage.Worst) {
		t.Errorf("%s: leakage %+v want %+v", oc.Name, gc.Leakage, oc.Leakage)
	}
	if len(gc.Pins) != len(oc.Pins) {
		t.Errorf("%s: %d pins want %d", oc.Name, len(gc.Pins), len(oc.Pins))
		return
	}
	for _, op := range oc.Pins {
		gp := gc.Pin(op.Name)
		if gp == nil {
			t.Errorf("%s: pin %s lost", oc.Name, op.Name)
			continue
		}
		if gp.Dir != op.Dir || gp.Class != op.Class {
			t.Errorf("%s/%s: dir/class %v/%v want %v/%v", oc.Name, op.Name, gp.Dir, gp.Class, op.Dir, op.Class)
		}
	}
	// Timing arcs with both corners.
	for _, oa := range oc.Arcs {
		ga := gc.Arc(oa.From, oa.To)
		if ga == nil {
			t.Errorf("%s: arc %s->%s lost", oc.Name, oa.From, oa.To)
			continue
		}
		if !close(ga.Rise.Best, oa.Rise.Best) || !close(ga.Rise.Worst, oa.Rise.Worst) ||
			!close(ga.Fall.Best, oa.Fall.Best) || !close(ga.Fall.Worst, oa.Fall.Worst) {
			t.Errorf("%s: arc %s->%s delays %+v/%+v want %+v/%+v",
				oc.Name, oa.From, oa.To, ga.Rise, ga.Fall, oa.Rise, oa.Fall)
		}
	}
	// Functional equivalence of combinational functions.
	for out, ofn := range oc.Functions {
		gfn, ok := gc.Functions[out]
		if !ok {
			t.Errorf("%s: function for %s lost", oc.Name, out)
			continue
		}
		if !equivalent(ofn, gfn) {
			t.Errorf("%s: function %s not equivalent: %s vs %s", oc.Name, out, ofn, gfn)
		}
	}
	// Sequential specs.
	if (oc.Seq == nil) != (gc.Seq == nil) {
		t.Errorf("%s: seq spec presence mismatch", oc.Name)
		return
	}
	if oc.Seq != nil {
		os, gs := oc.Seq, gc.Seq
		if gs.ClockPin != os.ClockPin || gs.Q != os.Q || gs.QN != os.QN ||
			gs.AsyncSet != os.AsyncSet || gs.AsyncReset != os.AsyncReset ||
			gs.AsyncSetLow != os.AsyncSetLow || gs.AsyncResetLow != os.AsyncResetLow ||
			gs.ScanIn != os.ScanIn || gs.ScanEnable != os.ScanEnable ||
			gs.ClockGate != os.ClockGate {
			t.Errorf("%s: seq spec mismatch:\n got %+v\nwant %+v", oc.Name, gs, os)
		}
		if !equivalent(os.Next, gs.Next) {
			t.Errorf("%s: next-state not equivalent: %s vs %s", oc.Name, os.Next, gs.Next)
		}
		if !close(gc.Setup.Best, oc.Setup.Best) || !close(gc.Setup.Worst, oc.Setup.Worst) {
			t.Errorf("%s: setup %+v want %+v", oc.Name, gc.Setup, oc.Setup)
		}
		if !close(gc.Hold.Best, oc.Hold.Best) || !close(gc.Hold.Worst, oc.Hold.Worst) {
			t.Errorf("%s: hold %+v want %+v", oc.Name, gc.Hold, oc.Hold)
		}
	}
	if (oc.GC == nil) != (gc.GC == nil) {
		t.Errorf("%s: GC spec presence mismatch", oc.Name)
		return
	}
	if oc.GC != nil {
		if !equivalent(oc.GC.Set, gc.GC.Set) || !equivalent(oc.GC.Reset, gc.GC.Reset) {
			t.Errorf("%s: GC spec not equivalent", oc.Name)
		}
		if gc.GC.Q != oc.GC.Q {
			t.Errorf("%s: GC output %q want %q", oc.Name, gc.GC.Q, oc.GC.Q)
		}
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9+1e-6*abs(b)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// equivalent exhaustively checks two expressions over their combined vars.
func equivalent(a, b *logic.Expr) bool {
	vars := map[string]bool{}
	for _, v := range a.Vars() {
		vars[v] = true
	}
	for _, v := range b.Vars() {
		vars[v] = true
	}
	names := make([]string, 0, len(vars))
	for v := range vars {
		names = append(names, v)
	}
	for mask := 0; mask < 1<<len(names); mask++ {
		env := map[string]logic.V{}
		for i, n := range names {
			env[n] = logic.FromBool(mask>>i&1 == 1)
		}
		if a.Eval(env) != b.Eval(env) {
			return false
		}
	}
	return true
}

func TestWriterDeterministic(t *testing.T) {
	lib := stdcells.New(stdcells.HighSpeed)
	a := WriteCorner(lib, netlist.Best)
	b := WriteCorner(lib, netlist.Best)
	if a != b {
		t.Fatal("writer output not deterministic")
	}
	if !strings.Contains(a, "cell (DFFQX1)") {
		t.Fatal("expected DFFQX1 in output")
	}
}

func TestReadLibraryCornerMismatch(t *testing.T) {
	lib := stdcells.New(stdcells.HighSpeed)
	best := WriteCorner(lib, netlist.Best)
	// Worst corner missing a cell.
	worst := WriteCorner(lib, netlist.Worst)
	worst = strings.Replace(worst, "cell (INVX1)", "cell (RENAMED)", 1)
	if _, err := ReadLibrary("x", "HS", best, worst); err == nil {
		t.Fatal("expected corner mismatch error")
	}
}
