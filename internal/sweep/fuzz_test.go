package sweep

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

// FuzzReadJournal throws arbitrary bytes at the checkpoint parser: it must
// never panic, never report records without a header, never report a clean
// length beyond the input, and fail only with the typed corruption error —
// the contract resume relies on when it decides whether a journal is a torn
// tail (continue) or damage (refuse).
func FuzzReadJournal(f *testing.F) {
	// A valid two-record journal, assembled frame by frame.
	valid := append([]byte(nil), journalMagic...)
	frame := func(payload string) {
		var pre [8]byte
		binary.LittleEndian.PutUint32(pre[:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(pre[4:], crcOf(payload))
		valid = append(valid, pre[:]...)
		valid = append(valid, payload...)
	}
	frame(`{"design":"t","seed":1,"corners":[1],"chips":1,"sigma":0,"faults_hash":7,"total":2}`)
	frame(`{"index":0,"corner":0,"chip":0,"fault":0,"outcome":{"fault":{"class":"stuck-at"},"detected":true}}`)
	frame(`{"index":1,"corner":0,"chip":0,"fault":1,"failure":{"kind":"panic","msg":"boom"}}`)
	f.Add(valid)
	f.Add(valid[:len(valid)-5])                                             // truncated record
	dup := append(append([]byte(nil), valid...), valid[len(valid)-108:]...) // repeated index frame
	f.Add(dup)
	corrupt := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(corrupt[len(journalMagic):], 0xFFFFFFFF) // corrupted length prefix
	f.Add(corrupt)
	f.Add([]byte{})
	f.Add([]byte("drsweepj1\n"))
	f.Add([]byte("not a journal at all, but long enough to try framing"))

	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, recs, clean, err := ReadJournal(data)
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("untyped error: %v", err)
		}
		if clean < 0 || clean > len(data) {
			t.Fatalf("clean length %d outside input of %d bytes", clean, len(data))
		}
		if hdr == nil && len(recs) > 0 {
			t.Fatal("records without a header")
		}
		for i, r := range recs {
			if r.Index != i {
				t.Fatalf("record %d carries index %d", i, r.Index)
			}
		}
		if err == nil && clean > 0 {
			// The clean prefix must re-read to the same records.
			_, recs2, clean2, err2 := ReadJournal(data[:clean])
			if err2 != nil || len(recs2) != len(recs) || clean2 != clean {
				t.Fatalf("clean prefix unstable: %d->%d records, %d->%d clean, %v",
					len(recs), len(recs2), clean, clean2, err2)
			}
		}
	})
}

func crcOf(s string) uint32 {
	return crc32.ChecksumIEEE([]byte(s))
}
