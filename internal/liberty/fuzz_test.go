package liberty

import "testing"

// FuzzParse feeds arbitrary text through the Liberty tokenizer and parser,
// and — when a root group emerges — through the corner reader, which walks
// cells, pins, timing arcs and function attributes. Any panic or hang is a
// bug in input handling.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"library (L) { }",
		`library (L) { cell (INVX1) { area : 1; pin (A) { direction : input; } } }`,
		`library (L) { cell (INVX1) { pin (Z) { direction : output; function : "!A"; } } }`,
		`library (L) { cell (DFF) { ff (IQ, IQN) { clocked_on : "CK"; next_state : "D"; } } }`,
		`library (L) { cell (LAT) { latch (IQ, IQN) { enable : "G"; data_in : "D"; } } }`,
		`library (L) { cell (C) { pin (Z) { timing () { related_pin : "A";
  cell_rise (scalar) { values ("0.05"); } cell_fall (scalar) { values ("0.04"); } } } } }`,
		"library (L) { define (x, cell, string); }",
		"library (L) { cell (C) { area : ; } }",
		"library (L) { cell (C) {",
		"} } }",
		"/* unterminated",
		`library (L) { k : "unterminated; }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return // bound parse work per input
		}
		g, err := Parse(src)
		if err != nil {
			return
		}
		// Exercise the semantic layer the same way ReadLibrary does, using
		// the fuzzed text for both corners.
		_, _ = ReadLibrary("F", "FZ", src, src)
		_ = g.Attr("name")
	})
}
