package faults_test

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"desync/internal/faults"
	"desync/internal/sim"
)

// TestDeriveSeedMixesIndex: per-fault randomization must not collapse onto
// the root seed — every index has to open an independent stream, or every
// fault in a campaign samples the same jittered delays.
func TestDeriveSeedMixesIndex(t *testing.T) {
	seen := map[int64]int64{}
	for i := int64(0); i < 64; i++ {
		s := faults.DeriveSeed(5, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("DeriveSeed(5, %d) == DeriveSeed(5, %d)", i, prev)
		}
		seen[s] = i
	}
	if faults.DeriveSeed(5, 3) != faults.DeriveSeed(5, 3) {
		t.Fatal("DeriveSeed is not a pure function")
	}
	c := dlxCampaign(t)
	a := sim.DelayFactorMap(c.M, faults.DeriveSeed(5, 0), 0.05, nil)
	b := sim.DelayFactorMap(c.M, faults.DeriveSeed(5, 1), 0.05, nil)
	same := 0
	for name, fa := range a {
		if b[name] == fa {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("indexes 0 and 1 drew identical delay-factor streams")
	}
}

// TestScenarioAtCorner: a control stuck-at fault must stay detected when
// the whole chip slides to the worst-corner scale with intra-die mismatch
// on top — the sweep's core soundness assumption (flow equivalence is delay
// independent, so the nominal golden stays a valid reference).
func TestScenarioAtCorner(t *testing.T) {
	c := dlxCampaign(t)
	list := c.ControlStuckFaults("mri")
	if len(list) == 0 {
		t.Fatal("no stuck faults enumerated")
	}
	chip := sim.DelayFactorMap(c.M, faults.DeriveSeed(11, 0), 0.09, nil)
	out, err := c.RunScenario(context.Background(), faults.Scenario{
		Fault: list[0], Index: 7, Scale: 2.5, DelayFactors: chip,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected {
		t.Fatalf("stuck fault escaped at scale 2.5: %+v", out)
	}
}

// TestScenarioReproducible: the same (seed, index, operating point) must
// produce a byte-identical outcome — this is what lets a sweep replay any
// failed scenario standalone.
func TestScenarioReproducible(t *testing.T) {
	c := dlxCampaign(t)
	list := c.DelayFaults(40, 1)
	if len(list) == 0 {
		t.Fatal("no delay faults enumerated")
	}
	sc := faults.Scenario{Fault: list[0], Index: 3, Scale: 1.4}
	run := func() []byte {
		out, err := c.RunScenario(context.Background(), sc)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("scenario not reproducible:\n%s\n%s", a, b)
	}
	if out, err := c.RunScenario(context.Background(), sc); err != nil || !out.Detected || out.Period <= 0 {
		t.Fatalf("under-margin delay fault at scale 1.4: detected=%v period=%v err=%v",
			out.Detected, out.Period, err)
	}
}

// TestScenarioInterrupt: a scenario deadline surfaces as the interrupt's
// error, never as a fault classification.
func TestScenarioInterrupt(t *testing.T) {
	c := dlxCampaign(t)
	list := c.ControlStuckFaults("mri")
	deadline := errors.New("scenario deadline")
	_, err := c.RunScenario(context.Background(), faults.Scenario{
		Fault:     list[0],
		Interrupt: func() error { return deadline },
	})
	if !errors.Is(err, deadline) {
		t.Fatalf("interrupt not surfaced: %v", err)
	}
}
