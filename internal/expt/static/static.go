// Package static cross-checks the mga static marked-graph engine against
// the two dynamic oracles the repository already has: the event-driven
// simulator's measured steady-state period and the equiv BFS verdicts —
// together with a wall-clock comparison of the two analysis engines over
// the same model extraction.
//
// It lives in a subpackage of expt because expt itself must stay
// importable from equiv's tests: expt/static imports mga, mga imports
// equiv, and an expt→mga edge would close an import cycle.
package static

import (
	"context"
	"fmt"
	"io"
	"time"

	"desync/internal/core"
	"desync/internal/ctrlnet"
	"desync/internal/equiv"
	"desync/internal/expt"
	"desync/internal/mga"
	"desync/internal/netlist"
)

// Row is one case study's cross-check: the static verdicts and period
// bound next to the simulator's measured period and the SSTA view of the
// slowest region, plus the wall-clock of the static analysis against the
// partial-order-reduced BFS over the same extraction.
type Row struct {
	Design      string
	Regions     int
	Places      int
	Transitions int

	Live bool
	Safe bool

	// StaticNs is the mga maximum-cycle-ratio period bound; SimNs the
	// simulator's measured steady-state effective period (0 when the case
	// study has no simulation testbench); SSTANs the 3σ quantile of the
	// slowest region's SSTA logic-path distribution — a lower bound on any
	// achievable period, not a period prediction, since it excludes the
	// handshake overhead both other columns include.
	StaticNs float64
	SimNs    float64
	SSTANs   float64

	// StaticUS and BFSUS are microseconds per analysis over the same
	// prebuilt model (min over repeats); BFSStates is the reduced search's
	// reachable marking count.
	StaticUS  float64
	BFSUS     float64
	BFSStates int
	Speedup   float64
}

// FullBFS is the unreduced (full-interleaving) DLX exploration: the
// exhaustive search a verifier without partial-order reduction performs,
// and the baseline the ISSUE's speedup requirement is stated against.
type FullBFS struct {
	US        float64
	States    int
	MaxStates int
	Truncated bool
}

// Table holds the full cross-check.
type Table struct {
	Rows []Row
	// DLXFull is the unreduced DLX run (the exhaustive baseline).
	DLXFull FullBFS
}

// timeStatic measures mga.AnalyzeModel over a prebuilt extraction,
// repeating and taking the minimum so allocator noise does not flatter
// either side.
func timeStatic(mod *netlist.Module, cn *ctrlnet.Network, m *equiv.Model, reps int) float64 {
	best := 0.0
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		mga.AnalyzeModel(mod, cn, m, mga.Options{})
		if d := float64(time.Since(t0)) / float64(time.Microsecond); i == 0 || d < best {
			best = d
		}
	}
	return best
}

// timeBFS measures the partial-order-reduced exploration over the same
// model, min over repeats.
func timeBFS(m *equiv.Model, reps int) (float64, int) {
	best, states := 0.0, 0
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		res, err := m.Explore(context.Background(), equiv.ExploreOptions{})
		if err != nil {
			return 0, 0
		}
		states = res.States
		if d := float64(time.Since(t0)) / float64(time.Microsecond); i == 0 || d < best {
			best = d
		}
	}
	return best, states
}

// sstaWorst returns the 3σ quantile of the slowest region's logic
// distribution (0 when SSTA cannot run on the design).
func sstaWorst(d *netlist.Design, res *core.Result) float64 {
	rows, err := expt.SSTAMatchingDesign(d, res)
	if err != nil {
		return 0
	}
	worst := 0.0
	for _, r := range rows {
		if q := r.Logic.Quantile(3); q > worst {
			worst = q
		}
	}
	return worst
}

// row builds one cross-check row from a desynchronized design, timing
// both engines over a single shared extraction.
func row(name string, d *netlist.Design, res *core.Result, simNs float64, reps int) (Row, *equiv.Model, error) {
	cn := ctrlnet.Derive(d.Top)
	m, err := equiv.FromNetwork(d.Top, cn)
	if err != nil {
		return Row{}, nil, fmt.Errorf("%s: %w", name, err)
	}
	rep := mga.AnalyzeModel(d.Top, cn, m, mga.Options{})
	r := Row{
		Design: name, Regions: rep.Regions, Places: rep.PlaceCount,
		Transitions: rep.Transitions,
		Live:        rep.Live, Safe: rep.Safe,
		StaticNs: rep.PeriodNs, SimNs: simNs,
		SSTANs: sstaWorst(d, res),
	}
	r.StaticUS = timeStatic(d.Top, cn, m, reps)
	r.BFSUS, r.BFSStates = timeBFS(m, reps)
	if r.StaticUS > 0 {
		r.Speedup = r.BFSUS / r.StaticUS
	}
	return r, m, nil
}

// Options sizes the experiment.
type Options struct {
	// Reps is the number of timing repetitions (min is reported); 0 means 5.
	Reps int
	// SimCycles bounds the DLX measurement run; 0 means 400.
	SimCycles int
	// FIRSamples bounds the FIR measurement run; 0 means 120.
	FIRSamples int
	// SkipARM drops the ARM row (its flow build dominates wall-clock).
	SkipARM bool
	// Parallelism threads through to the flows; timing runs are always
	// effectively serial (both engines finish in one scheduling quantum).
	Parallelism int
}

// Run executes the full cross-check: DLX, ARM and FIR flows, a simulator
// measurement where a testbench exists, SSTA over each desynchronized
// design, both analysis engines timed over the same extraction, and the
// unreduced DLX exploration as the exhaustive baseline.
func Run(opts Options) (*Table, error) {
	reps := opts.Reps
	if reps <= 0 {
		reps = 5
	}
	cycles := opts.SimCycles
	if cycles <= 0 {
		cycles = 400
	}
	samples := opts.FIRSamples
	if samples <= 0 {
		samples = 120
	}
	t := &Table{}

	// DLX: full flow, measured period, plus the unreduced baseline.
	dlx, err := expt.RunDLXFlow(expt.FlowConfig{Parallelism: opts.Parallelism})
	if err != nil {
		return nil, err
	}
	mr, err := expt.MeasureDDLX(dlx, netlist.Worst, 1.0, -1, cycles)
	if err != nil {
		return nil, err
	}
	r, m, err := row("dlx", dlx.Desync, dlx.Result, mr.EffectivePeriod, reps)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, r)
	t0 := time.Now()
	full, err := m.Explore(context.Background(), equiv.ExploreOptions{
		NoReduce:    true,
		Parallelism: opts.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	t.DLXFull = FullBFS{
		US:        float64(time.Since(t0)) / float64(time.Microsecond),
		States:    full.States,
		MaxStates: full.MaxStates,
		Truncated: full.Truncated,
	}

	// ARM: area-only case study — no simulation testbench, so the sim
	// column stays empty; the static and BFS verdicts still cross-check.
	if !opts.SkipARM {
		arm, err := expt.RunARMFlow(false)
		if err != nil {
			return nil, err
		}
		r, _, err := row("arm", arm.Desync, arm.Result, 0, reps)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, r)
	}

	// FIR: boundary-handshake case study with a streaming testbench.
	fir, err := expt.RunFIRFlow(expt.FlowConfig{Parallelism: opts.Parallelism})
	if err != nil {
		return nil, err
	}
	fr, err := expt.MeasureDFIR(fir, netlist.Worst, samples)
	if err != nil {
		return nil, err
	}
	r, _, err = row("fir", fir.Desync, fir.Result, fr.EffectivePeriod, reps)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, r)
	return t, nil
}

// Render writes the cross-check as the EXPERIMENTS.md-style table.
func Render(w io.Writer, t *Table) {
	fmt.Fprintf(w, "static marked-graph analysis vs simulation vs BFS (single core, min over repeats)\n\n")
	fmt.Fprintf(w, "%-6s %7s %7s %6s %6s  %10s %10s %10s  %10s %10s %9s %9s\n",
		"design", "regions", "places", "live", "safe",
		"static ns", "sim ns", "ssta3σ ns", "static µs", "bfs µs", "states", "speedup")
	for _, r := range t.Rows {
		sim := "—"
		if r.SimNs > 0 {
			sim = fmt.Sprintf("%.4f", r.SimNs)
		}
		fmt.Fprintf(w, "%-6s %7d %7d %6v %6v  %10.4f %10s %10.4f  %10.1f %10.1f %9d %8.1fx\n",
			r.Design, r.Regions, r.Places, r.Live, r.Safe,
			r.StaticNs, sim, r.SSTANs,
			r.StaticUS, r.BFSUS, r.BFSStates, r.Speedup)
	}
	f := t.DLXFull
	if f.US > 0 {
		verdict := "complete"
		if f.Truncated {
			verdict = fmt.Sprintf("TRUNCATED at %d markings — no verdict", f.MaxStates)
		}
		speedup := 0.0
		if len(t.Rows) > 0 && t.Rows[0].StaticUS > 0 {
			speedup = f.US / t.Rows[0].StaticUS
		}
		fmt.Fprintf(w, "\ndlx, full interleaving (no partial-order reduction): %d states in %.0f µs (%s); static speedup %.0fx\n",
			f.States, f.US, verdict, speedup)
	}
	fmt.Fprintf(w, "\nThe static period bound is an upper bound on the simulated steady-state\nperiod; the SSTA column is the slowest region's 3σ logic-path delay, a\nlower bound that excludes handshake overhead. Timings are single-core\nminima over repeated runs of each engine on one shared model extraction.\n")
}
