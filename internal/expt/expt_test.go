package expt

import (
	"strings"
	"testing"

	"desync/internal/netlist"
)

// Table 5.1's reproduced shape: a moderate total overhead dominated by the
// flip-flop → latch-pair substitution in the sequential row, small
// combinational overhead from the matched delay elements, and a core-size
// overhead a few points above the cell-area one (utilization drops).
func TestTable51Shape(t *testing.T) {
	tbl, f, err := Table51()
	if err != nil {
		t.Fatal(err)
	}
	if f.Result.Grouping.Groups != 4 {
		t.Fatalf("DLX regions = %d, want 4", f.Result.Grouping.Groups)
	}
	seq, _ := Find(tbl.PostSynthesis, "sequential logic (um2)")
	comb, _ := Find(tbl.PostSynthesis, "combinational logic (um2)")
	cell, _ := Find(tbl.PostSynthesis, "cell area (um2)")
	core, _ := Find(tbl.PostLayout, "core size (um2)")
	if seq.Overhead <= comb.Overhead {
		t.Fatalf("sequential overhead (%.1f%%) must dominate combinational (%.1f%%)",
			seq.Overhead, comb.Overhead)
	}
	if seq.Overhead < 10 || seq.Overhead > 35 {
		t.Fatalf("sequential overhead %.1f%% outside the latch-substitution regime", seq.Overhead)
	}
	if comb.Overhead < 0 || comb.Overhead > 12 {
		t.Fatalf("combinational overhead %.1f%% implausible", comb.Overhead)
	}
	if cell.Overhead <= 0 || cell.Overhead > 25 {
		t.Fatalf("cell-area overhead %.1f%% implausible", cell.Overhead)
	}
	if core.Overhead <= cell.Overhead-1 {
		t.Fatalf("core overhead %.1f%% should not undercut cell overhead %.1f%%",
			core.Overhead, cell.Overhead)
	}
	out := tbl.Render()
	for _, want := range []string{"Post Synthesis", "Post Layout", "core utilization"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q", want)
		}
	}
}

// Fig 5.3's reproduced shape: the effective period is monotone in the
// delay selection at both corners; selections 0 and 1 fail at BOTH corners
// (the delay elements track the logic across corners — the paper's central
// observation); the best working setup is selection 2.
func TestFig53Shape(t *testing.T) {
	sweep, f, err := Fig53(25)
	if err != nil {
		t.Fatal(err)
	}
	if sweep.BestSelection != 2 {
		t.Fatalf("best selection = %d, want 2", sweep.BestSelection)
	}
	status := map[[2]int]TimingPoint{}
	for _, p := range sweep.DDLX {
		status[[2]int{p.Selection, int(p.Corner)}] = p
	}
	for sel := 0; sel <= 1; sel++ {
		for _, c := range []netlist.Corner{netlist.Best, netlist.Worst} {
			if status[[2]int{sel, int(c)}].Correct {
				t.Fatalf("selection %d at %s corner should be too short", sel, c)
			}
		}
	}
	for sel := 2; sel <= 7; sel++ {
		for _, c := range []netlist.Corner{netlist.Best, netlist.Worst} {
			if !status[[2]int{sel, int(c)}].Correct {
				t.Fatalf("selection %d at %s corner should work", sel, c)
			}
		}
	}
	// Monotone periods per corner over the working range.
	for _, c := range []netlist.Corner{netlist.Best, netlist.Worst} {
		for sel := 3; sel <= 7; sel++ {
			if status[[2]int{sel, int(c)}].Period <= status[[2]int{sel - 1, int(c)}].Period {
				t.Fatalf("%s corner: period not monotone at selection %d", c, sel)
			}
		}
	}
	// Corners track each other: worst/best period ratio stays near the
	// library corner spread at every working selection.
	for sel := 2; sel <= 7; sel++ {
		ratio := status[[2]int{sel, 1}].Period / status[[2]int{sel, 0}].Period
		if ratio < 2.2 || ratio > 2.8 {
			t.Fatalf("selection %d: corner ratio %.2f drifted from the library spread", sel, ratio)
		}
	}
	// The best working setup is competitive with the synchronous worst
	// case (the paper reports a modest overhead; transparency lets our
	// latch-based version borrow time, so allow a band around 1.0).
	best := status[[2]int{sweep.BestSelection, 1}].Period
	if best < 0.7*f.Period || best > 1.4*f.Period {
		t.Fatalf("DDLX@best %.2f vs DLX %.2f outside the credible band", best, f.Period)
	}
	if !strings.Contains(sweep.Render(), "TOO SHORT") {
		t.Fatal("render must mark the failing selections")
	}
}

// Fig 5.5's reproduced shape: power rises as the selection lowers (higher
// frequency), and the faster corner burns more power.
func TestFig55Shape(t *testing.T) {
	sweep, _, err := Fig53(25)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[[2]int]TimingPoint{}
	for _, p := range sweep.DDLX {
		byKey[[2]int{p.Selection, int(p.Corner)}] = p
	}
	for _, c := range []netlist.Corner{netlist.Best, netlist.Worst} {
		for sel := 3; sel <= 7; sel++ {
			if byKey[[2]int{sel, int(c)}].PowerMW >= byKey[[2]int{sel - 1, int(c)}].PowerMW {
				t.Fatalf("%s corner: power not rising as selection lowers (sel %d)", c, sel)
			}
		}
		// Desynchronized power exceeds the synchronous version at the same
		// corner and comparable rate (cell-count overhead), within reason.
		p2 := byKey[[2]int{4, int(c)}].PowerMW
		if p2 <= 0 {
			t.Fatalf("%s corner: no power measured", c)
		}
	}
	if byKey[[2]int{2, 0}].PowerMW <= byKey[[2]int{2, 1}].PowerMW {
		t.Fatal("best corner (faster) must burn more power than worst")
	}
	if !strings.Contains(sweep.RenderPower(), "Total power") {
		t.Fatal("power rendering broken")
	}
}

// Fig 5.4's reproduced claim: under an inter-die population spanning the
// corners, the desynchronized design beats the synchronous worst-case
// period on the large majority of chips (~90% at the calibrated setup).
func TestFig54Majority(t *testing.T) {
	mc, _, err := Fig54(30, 15, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if mc.FasterFraction < 0.7 {
		t.Fatalf("only %.0f%% of chips faster than the synchronous worst case", mc.FasterFraction*100)
	}
	if mc.DDLXBest >= mc.DDLXWorst {
		t.Fatal("population has no spread")
	}
	if !strings.Contains(mc.Render(), "faster than synchronous worst case") {
		t.Fatal("render broken")
	}
}

// Table 5.2's reproduced shape: the scan design's substitution overhead
// lands in the sequential row (scan muxes rebuilt from discrete gates) and
// exceeds the DLX's sequential overhead; combinational logic is nearly
// untouched.
func TestTable52Shape(t *testing.T) {
	tbl, f, err := Table52()
	if err != nil {
		t.Fatal(err)
	}
	if f.ScanChain < 1000 {
		t.Fatalf("ARM scan chain only %d flip-flops", f.ScanChain)
	}
	if f.Coverage < 0.5 {
		t.Fatalf("vector coverage %.2f too low", f.Coverage)
	}
	seq, _ := Find(tbl.PostSynthesis, "sequential logic (um2)")
	comb, _ := Find(tbl.PostSynthesis, "combinational logic (um2)")
	if seq.Overhead < 15 {
		t.Fatalf("ARM sequential overhead %.1f%% too small for a scan design", seq.Overhead)
	}
	if comb.Overhead > 6 {
		t.Fatalf("ARM combinational overhead %.1f%% too large", comb.Overhead)
	}
	if seq.Overhead < 4*comb.Overhead {
		t.Fatalf("sequential (%.1f%%) must dwarf combinational (%.1f%%)", seq.Overhead, comb.Overhead)
	}
}

func TestControlOverheadBand(t *testing.T) {
	f, err := RunDLXFlow(FlowConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ab, err := ControlOverhead(f, 25)
	if err != nil {
		t.Fatal(err)
	}
	// Conservatively sized delay elements put the as-sized overhead above
	// the paper's calibrated 20%, but it must stay a bounded constant.
	if ab.OverheadPct < 5 || ab.OverheadPct > 80 {
		t.Fatalf("as-sized control overhead %.1f%% outside the credible band", ab.OverheadPct)
	}
}

// §6 future work, implemented: SSTA confirms every region's delay element
// covers its logic with near-certainty on-die (shared global variation
// cancels in the difference), while an off-die reference with the same
// nominal margin would not.
// TestUnderSizedDelayElementFlagged: a delay element sized far below its
// region's combinational delay must be flagged twice over — statically by
// the sizing check (Result.UnderMargin) and dynamically by the
// flow-equivalence check, which sees the too-early capture corrupt the
// architectural state at the worst corner.
func TestUnderSizedDelayElementFlagged(t *testing.T) {
	f, err := RunDLXFlow(FlowConfig{Margin: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Result.UnderMargin) == 0 {
		t.Fatal("margin 0.05 not flagged by the sizing check")
	}
	run, err := MeasureDDLX(f, netlist.Worst, 1.0, -1, 20)
	if err != nil {
		// A stall is also a detection: the broken timing never produced
		// enough captures to compare.
		t.Logf("under-sized element stalled the simulation: %v", err)
		return
	}
	if run.Correct {
		t.Fatal("flow-equivalence check passed with under-sized delay elements")
	}
}

func TestSSTAMatching(t *testing.T) {
	f, err := RunDLXFlow(FlowConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := SSTAMatching(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("expected 4 regions, got %d", len(rows))
	}
	worstIndep := 1.0
	for _, r := range rows {
		if r.CoverShared < 0.999 {
			t.Fatalf("region %d: on-die coverage %.4f, want ~1", r.Region, r.CoverShared)
		}
		if r.Element.Mean <= r.Logic.Mean {
			t.Fatalf("region %d: element mean does not exceed logic", r.Region)
		}
		if r.CoverIndependent < worstIndep {
			worstIndep = r.CoverIndependent
		}
	}
	if worstIndep > 0.995 {
		t.Fatalf("off-die reference coverage %.4f suspiciously perfect; the contrast is the point", worstIndep)
	}
	if !strings.Contains(RenderSSTA(rows), "on-die") {
		t.Fatal("render broken")
	}
}

func TestFig24AndTable21(t *testing.T) {
	rows, err := Fig24()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("want 7 protocols, got %d", len(rows))
	}
	live, fe := 0, 0
	for _, r := range rows {
		if r.Live {
			live++
		}
		if r.FlowEq {
			fe++
		}
	}
	if live != 6 || fe != 6 {
		t.Fatalf("classification off: %d live, %d flow-equivalent (want 6/6)", live, fe)
	}
	out := RenderFig24(rows)
	if !strings.Contains(out, "semi-decoupled") {
		t.Fatal("render broken")
	}
	if !strings.Contains(Table21(), "unchanged") {
		t.Fatal("Table 2.1 render broken")
	}
}
