package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"desync/internal/expt"
	"desync/internal/lint"
)

var update = flag.Bool("update", false, "rewrite the golden report files")

// goldenCompare asserts got matches the committed golden byte for byte, so
// any behavior drift in the lint derivation shows up as a diff, not as a
// silently different report.
func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("report drifted from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// The -gen goldens pin the synchronous-netlist (NL-*) reports of both case
// studies through the real CLI entry point.
func TestGoldenGenReports(t *testing.T) {
	for _, gen := range []string{"dlx", "arm"} {
		t.Run(gen, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run([]string{"-gen", gen, "-json"}, &out, &errb); code != 0 {
				t.Fatalf("drlint -gen %s exited %d: %s", gen, code, errb.String())
			}
			goldenCompare(t, gen+".json", out.Bytes())
		})
	}
}

// The desync goldens pin the full DS-* derivation (regions, phases,
// channels, timing budgets) over both desynchronized case studies.
func TestGoldenDesyncDLX(t *testing.T) {
	f, err := expt.RunDLXFlow(expt.FlowConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rep := lint.Check(f.Desync.Top, lint.Options{Desync: true, Constraints: f.Result.Constraints})
	out, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "dlx_desync.json", append(out, '\n'))

	// The parallel timing cross-checks must reproduce the same golden.
	rep4 := lint.Check(f.Desync.Top, lint.Options{Desync: true, Constraints: f.Result.Constraints, Parallelism: 4})
	out4, err := rep4.JSON()
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "dlx_desync.json", append(out4, '\n'))
}

func TestGoldenDesyncARM(t *testing.T) {
	f, err := expt.RunARMFlow(false)
	if err != nil {
		t.Fatal(err)
	}
	// RunARMFlow does not retain the generated constraints; linting without
	// them still exercises the whole structural derivation plus the
	// no-constraints advisory path.
	rep := lint.Check(f.Desync.Top, lint.Options{Desync: true})
	out, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "arm_desync.json", append(out, '\n'))
}
