package netlist

import (
	"testing"

	"desync/internal/logic"
)

// tinyLib builds a minimal library for structural tests.
func tinyLib() *Library {
	lib := NewLibrary("tiny", "HS")
	lib.Add(&CellDef{
		Name: "INV", Kind: KindComb, Area: 1,
		Pins:      []PinDef{{Name: "A", Dir: In}, {Name: "Z", Dir: Out}},
		Functions: map[string]*logic.Expr{"Z": logic.MustParseExpr("!A")},
		Arcs:      []TimingArc{{From: "A", To: "Z", Rise: Delay{0.01, 0.03}, Fall: Delay{0.01, 0.03}}},
	})
	lib.Add(&CellDef{
		Name: "BUF", Kind: KindComb, Area: 1,
		Pins:      []PinDef{{Name: "A", Dir: In}, {Name: "Z", Dir: Out}},
		Functions: map[string]*logic.Expr{"Z": logic.MustParseExpr("A")},
		Arcs:      []TimingArc{{From: "A", To: "Z", Rise: Delay{0.01, 0.03}, Fall: Delay{0.01, 0.03}}},
	})
	lib.Add(&CellDef{
		Name: "AND2", Kind: KindComb, Area: 2,
		Pins:      []PinDef{{Name: "A", Dir: In}, {Name: "B", Dir: In}, {Name: "Z", Dir: Out}},
		Functions: map[string]*logic.Expr{"Z": logic.MustParseExpr("A&B")},
		Arcs: []TimingArc{
			{From: "A", To: "Z", Rise: Delay{0.02, 0.06}, Fall: Delay{0.02, 0.06}},
			{From: "B", To: "Z", Rise: Delay{0.02, 0.06}, Fall: Delay{0.02, 0.06}},
		},
	})
	lib.Add(&CellDef{
		Name: "DFF", Kind: KindFF, Area: 5,
		Pins: []PinDef{
			{Name: "D", Dir: In}, {Name: "CK", Dir: In, Class: ClassClock},
			{Name: "Q", Dir: Out, Class: ClassOutput},
		},
		Seq:  &SeqSpec{Next: logic.Var("D"), ClockPin: "CK", Q: "Q"},
		Arcs: []TimingArc{{From: "CK", To: "Q", Rise: Delay{0.05, 0.15}, Fall: Delay{0.05, 0.15}}},
	})
	return lib
}

func TestLibraryLookup(t *testing.T) {
	lib := tinyLib()
	if _, err := lib.Cell("INV"); err != nil {
		t.Fatal(err)
	}
	if _, err := lib.Cell("NONE"); err == nil {
		t.Fatal("expected error for missing cell")
	}
	inv := lib.MustCell("INV")
	if p := inv.Pin("A"); p == nil || p.Dir != In {
		t.Fatal("pin lookup failed")
	}
	if p := inv.Pin("nope"); p != nil {
		t.Fatal("expected nil for unknown pin")
	}
}

func TestBufferLikeDetection(t *testing.T) {
	lib := tinyLib()
	if inv, ok := lib.MustCell("INV").IsBufferLike(); !ok || !inv {
		t.Fatal("INV should be inverting buffer-like")
	}
	if inv, ok := lib.MustCell("BUF").IsBufferLike(); !ok || inv {
		t.Fatal("BUF should be non-inverting buffer-like")
	}
	if _, ok := lib.MustCell("AND2").IsBufferLike(); ok {
		t.Fatal("AND2 is not buffer-like")
	}
	if _, ok := lib.MustCell("DFF").IsBufferLike(); ok {
		t.Fatal("DFF is not buffer-like")
	}
}

func TestConnectivity(t *testing.T) {
	lib := tinyLib()
	m := NewModule("top")
	m.AddPort("a", In)
	m.AddPort("b", In)
	m.AddPort("z", Out)
	g := m.AddInst("g1", lib.MustCell("AND2"))
	m.MustConnect(g, "A", m.Net("a"))
	m.MustConnect(g, "B", m.Net("b"))
	m.MustConnect(g, "Z", m.Net("z"))

	if errs := m.Check(); len(errs) != 0 {
		t.Fatalf("check failed: %v", errs)
	}
	if m.Net("z").Driver.Inst != g {
		t.Fatal("driver not recorded")
	}
	if len(m.Net("a").Sinks) != 1 || m.Net("a").Sinks[0].Inst != g {
		t.Fatal("sink not recorded")
	}
	// Double-driving is rejected.
	g2 := m.AddInst("g2", lib.MustCell("INV"))
	m.MustConnect(g2, "A", m.Net("a"))
	if err := m.Connect(g2, "Z", m.Net("z")); err == nil {
		t.Fatal("expected double-driver error")
	}
}

func TestCheckFindsProblems(t *testing.T) {
	lib := tinyLib()
	m := NewModule("top")
	m.AddPort("a", In)
	g := m.AddInst("g1", lib.MustCell("INV"))
	m.MustConnect(g, "A", m.Net("a"))
	// Z left unconnected.
	errs := m.Check()
	if len(errs) != 1 {
		t.Fatalf("want 1 error, got %v", errs)
	}
	// A net with sinks but no driver.
	n := m.AddNet("dangling")
	g2 := m.AddInst("g2", lib.MustCell("INV"))
	m.MustConnect(g2, "A", n)
	errs = m.Check()
	if len(errs) != 3 { // g1/Z, g2/Z unconnected + dangling driverless
		t.Fatalf("want 3 errors, got %v", errs)
	}
}

func TestDisconnectAndRemove(t *testing.T) {
	lib := tinyLib()
	m := NewModule("top")
	a := m.AddNet("a")
	z := m.AddNet("z")
	g := m.AddInst("g1", lib.MustCell("INV"))
	m.MustConnect(g, "A", a)
	m.MustConnect(g, "Z", z)
	m.RemoveInst(g)
	if a.HasDriver() || len(a.Sinks) != 0 || z.HasDriver() {
		t.Fatal("remove did not clean connections")
	}
	if err := m.RemoveNet(a); err != nil {
		t.Fatal(err)
	}
	if m.Net("a") != nil {
		t.Fatal("net still present")
	}
}

func TestReplaceSinks(t *testing.T) {
	lib := tinyLib()
	m := NewModule("top")
	m.AddPort("out", Out)
	from := m.AddNet("from")
	to := m.AddNet("to")
	g := m.AddInst("g1", lib.MustCell("INV"))
	m.MustConnect(g, "A", from)
	// Module output port sinks "from" too: simulate by moving the port net.
	p := m.Port("out")
	p.Net = from
	from.Sinks = append(from.Sinks, PinRef{Pin: "out"})

	m.ReplaceSinks(from, to)
	if g.Conn("A") != to {
		t.Fatal("instance sink not moved")
	}
	if p.Net != to {
		t.Fatal("port sink not moved")
	}
	if len(from.Sinks) != 0 || len(to.Sinks) != 2 {
		t.Fatal("sink lists wrong")
	}
}

func TestBusBase(t *testing.T) {
	cases := []struct {
		in   string
		base string
		idx  int
		ok   bool
	}{
		{"data[3]", "data", 3, true},
		{"data[15]", "data", 15, true},
		{"data_3", "", 0, false},
		{"data[]", "", 0, false},
		{"data[a]", "", 0, false},
		{"plain", "", 0, false},
		{"x[1][2]", "x[1]", 2, true},
	}
	for _, c := range cases {
		b, i, ok := BusBase(c.in)
		if ok != c.ok || b != c.base || i != c.idx {
			t.Errorf("BusBase(%q) = %q,%d,%v want %q,%d,%v", c.in, b, i, ok, c.base, c.idx, c.ok)
		}
	}
}

func TestStats(t *testing.T) {
	lib := tinyLib()
	m := NewModule("top")
	a := m.AddNet("a")
	b := m.AddNet("b")
	z := m.AddNet("z")
	q := m.AddNet("q")
	ck := m.AddNet("ck")
	g := m.AddInst("g1", lib.MustCell("AND2"))
	m.MustConnect(g, "A", a)
	m.MustConnect(g, "B", b)
	m.MustConnect(g, "Z", z)
	f := m.AddInst("f1", lib.MustCell("DFF"))
	m.MustConnect(f, "D", z)
	m.MustConnect(f, "CK", ck)
	m.MustConnect(f, "Q", q)

	s := m.ComputeStats()
	if s.Cells != 2 || s.Nets != 5 || s.FFs != 1 || s.CombGates != 1 {
		t.Fatalf("stats wrong: %+v", s)
	}
	if s.CellArea != 7 || s.SeqArea != 5 || s.CombArea != 2 {
		t.Fatalf("areas wrong: %+v", s)
	}
}

func TestFlatten(t *testing.T) {
	lib := tinyLib()
	// Submodule: two inverters in series.
	sub := NewModule("stage")
	sub.AddPort("in", In)
	sub.AddPort("out", Out)
	mid := sub.AddNet("mid")
	i1 := sub.AddInst("i1", lib.MustCell("INV"))
	i2 := sub.AddInst("i2", lib.MustCell("INV"))
	sub.MustConnect(i1, "A", sub.Net("in"))
	sub.MustConnect(i1, "Z", mid)
	sub.MustConnect(i2, "A", mid)
	sub.MustConnect(i2, "Z", sub.Net("out"))

	d := NewDesign("top", lib)
	d.Top.AddPort("a", In)
	d.Top.AddPort("y", Out)
	link := d.Top.AddNet("link")
	s1 := d.Top.AddSubInst("s1", sub)
	s2 := d.Top.AddSubInst("s2", sub)
	d.Top.MustConnect(s1, "in", d.Top.Net("a"))
	d.Top.MustConnect(s1, "out", link)
	d.Top.MustConnect(s2, "in", link)
	d.Top.MustConnect(s2, "out", d.Top.Net("y"))

	if err := d.Flatten(true); err != nil {
		t.Fatal(err)
	}
	if len(d.Top.Insts) != 4 {
		t.Fatalf("want 4 flat instances, got %d", len(d.Top.Insts))
	}
	if errs := d.Top.Check(); len(errs) != 0 {
		t.Fatalf("flattened module broken: %v", errs)
	}
	// Group assignment from hierarchy: s1 cells group 1, s2 cells group 2.
	g1 := d.Top.Inst("s1/i1")
	g2 := d.Top.Inst("s2/i2")
	if g1 == nil || g2 == nil {
		t.Fatal("prefixed instances missing")
	}
	if g1.Group != 1 || g2.Group != 2 {
		t.Fatalf("groups wrong: %d %d", g1.Group, g2.Group)
	}
	// Connectivity preserved: a -> s1/i1 -> s1/mid -> s1/i2 -> link ...
	if d.Top.Inst("s1/i2").Conn("Z") != d.Top.Net("link") {
		t.Fatal("port binding to outer net lost")
	}
	if d.Top.Net("s1/mid") == nil {
		t.Fatal("internal net not prefixed")
	}
}

func TestDelayCorners(t *testing.T) {
	d := Delay{1, 3}
	if d.At(Best) != 1 || d.At(Worst) != 3 {
		t.Fatal("corner selection wrong")
	}
	s := d.Scale(2)
	if s.Best != 2 || s.Worst != 6 {
		t.Fatal("scale wrong")
	}
	if Best.String() != "best" || Worst.String() != "worst" {
		t.Fatal("corner names wrong")
	}
}
