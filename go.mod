module desync

go 1.22
