package netlist

import "testing"

// buildPair wires inv -> and gate through net w; order chooses whether the
// nets and instances are created forward or reversed, so the two variants
// hold identical content in different creation order.
func buildPair(t *testing.T, reversed bool) *Module {
	t.Helper()
	lib := tinyLib()
	m := NewModule("pair")
	add := func(name string) *Net { return m.AddNet(name) }
	var a, w, z *Net
	if reversed {
		z, w, a = add("z"), add("w"), add("a")
	} else {
		a, w, z = add("a"), add("w"), add("z")
	}
	m.AddPortOnNet("a", In, a)
	m.AddPortOnNet("z", Out, z)
	inv := m.AddInst("u_inv", lib.MustCell("INV"))
	buf := m.AddInst("u_buf", lib.MustCell("BUF"))
	if reversed {
		// Connection order permuted too: the Conns map has no order, but the
		// sequence of Connect calls changes Sinks slice order on shared nets.
		m.MustConnect(buf, "Z", z)
		m.MustConnect(buf, "A", w)
		m.MustConnect(inv, "Z", w)
		m.MustConnect(inv, "A", a)
	} else {
		m.MustConnect(inv, "A", a)
		m.MustConnect(inv, "Z", w)
		m.MustConnect(buf, "A", w)
		m.MustConnect(buf, "Z", z)
	}
	return m
}

func TestContentHashDeterministic(t *testing.T) {
	h1 := buildPair(t, false).ContentHash()
	h2 := buildPair(t, false).ContentHash()
	if h1 != h2 {
		t.Fatalf("identical builds hash differently: %s vs %s", h1, h2)
	}
	if len(h1) != 64 {
		t.Fatalf("want a 64-hex-digit sha256, got %q", h1)
	}
}

func TestContentHashCreationOrderInvariant(t *testing.T) {
	fwd := buildPair(t, false).ContentHash()
	rev := buildPair(t, true).ContentHash()
	if fwd != rev {
		t.Fatalf("creation order leaked into the hash: %s vs %s", fwd, rev)
	}
}

func TestContentHashSeesContentChanges(t *testing.T) {
	base := buildPair(t, false).ContentHash()
	lib := tinyLib()

	// A structural change: one extra net.
	m := buildPair(t, false)
	m.AddNet("extra")
	if m.ContentHash() == base {
		t.Fatal("added net not reflected in the hash")
	}

	// An annotation change: region assignment.
	m2 := buildPair(t, false)
	m2.Inst("u_inv").Group = 3
	if m2.ContentHash() == base {
		t.Fatal("group change not reflected in the hash")
	}

	// A connectivity change: retarget the buffer input.
	m3 := buildPair(t, false)
	m3.Disconnect(m3.Inst("u_buf"), "A")
	m3.MustConnect(m3.Inst("u_buf"), "A", m3.Net("a"))
	if m3.ContentHash() == base {
		t.Fatal("reconnection not reflected in the hash")
	}

	// A cell-binding change at equal connectivity.
	m4 := NewModule("pair")
	a, w, z := m4.AddNet("a"), m4.AddNet("w"), m4.AddNet("z")
	m4.AddPortOnNet("a", In, a)
	m4.AddPortOnNet("z", Out, z)
	i1 := m4.AddInst("u_inv", lib.MustCell("BUF")) // BUF where INV was
	i2 := m4.AddInst("u_buf", lib.MustCell("BUF"))
	m4.MustConnect(i1, "A", a)
	m4.MustConnect(i1, "Z", w)
	m4.MustConnect(i2, "A", w)
	m4.MustConnect(i2, "Z", z)
	if m4.ContentHash() == base {
		t.Fatal("cell binding not reflected in the hash")
	}
}

func TestDesignContentHashCoversLibraryVariant(t *testing.T) {
	build := func(variant string) *Design {
		lib := NewLibrary("tiny", variant)
		lib.Add(&CellDef{Name: "INV", Kind: KindComb,
			Pins: []PinDef{{Name: "A", Dir: In}, {Name: "Z", Dir: Out}}})
		d := NewDesign("top", lib)
		n := d.Top.AddNet("a")
		d.Top.AddPortOnNet("a", In, n)
		in := d.Top.AddInst("u", lib.MustCell("INV"))
		d.Top.MustConnect(in, "A", n)
		return d
	}
	hs, hs2, ll := build("HS").ContentHash(), build("HS").ContentHash(), build("LL").ContentHash()
	if hs != hs2 {
		t.Fatalf("design hash nondeterministic: %s vs %s", hs, hs2)
	}
	if hs == ll {
		t.Fatal("library variant must be part of the design hash")
	}
}
