// Package cdet implements the completion-detection alternative to matched
// delay elements (§2.4.4): instead of delaying the request by the cloud's
// critical-path delay, the combinational logic is shadowed by a dual-rail
// completion network that signals when every region output has actually
// resolved for the current data. The circuit then runs at its true,
// data-dependent (average-case) speed — at the cost of roughly doubling
// the combinational area, which is exactly the trade-off the paper cites
// for not choosing this path in its flow.
//
// Construction: each cloud input x gets a rail pair (t,f) = (go·x, go·x̄);
// each gate gets a DIMS-style dual-rail image built from its truth table
// (inverters and buffers are free rail swaps); rails are monotone during
// evaluation (go=1) and collapse to the 00 spacer when go falls, giving the
// 4-phase return-to-zero for free. DONE is the conjunction of per-output
// validities (t∨f). Every rail gate is at least as slow as the single-rail
// gate it shadows, so DONE rising bounds the real datapath's settling along
// the same sensitized paths; a configurable margin chain adds slack for
// intra-die mismatch.
package cdet

import (
	"fmt"
	"sort"
	"strings"

	"desync/internal/logic"
	"desync/internal/netlist"
)

// Result reports what the completion network construction created.
type Result struct {
	RailCells   int    // dual-rail image cells
	DetectCells int    // validity OR / completion AND tree cells
	Inputs      int    // boundary inputs
	Outputs     int    // detected outputs
	DoneInst    string // instance driving the done net (for constraints)
}

// railPair is the dual-rail image of one single-rail net.
type railPair struct {
	t, f *netlist.Net
}

// builder tracks construction state. Construction errors (unknown cell,
// arity mismatch, double-driven net) stick in err: the first one wins,
// later gate calls become no-ops, and AddCompletionNetwork surfaces it —
// the netlist under construction is abandoned rather than panicking
// half-built.
type builder struct {
	m      *netlist.Module
	lib    *netlist.Library
	prefix string
	n      int
	res    Result
	err    error
}

func (b *builder) fresh(tag string) *netlist.Net {
	b.n++
	return b.m.AddNet(fmt.Sprintf("%s/%s%d", b.prefix, tag, b.n))
}

func (b *builder) gate(cell string, tag string, ins []*netlist.Net, out *netlist.Net) {
	if b.err != nil {
		return
	}
	cd, err := b.lib.Cell(cell)
	if err != nil {
		b.err = fmt.Errorf("cdet: %w", err)
		return
	}
	b.n++
	in := b.m.AddInst(fmt.Sprintf("%s/%s%d", b.prefix, tag, b.n), cd)
	in.Origin = "cdet"
	in.SizeOnly = true
	pins := in.Cell.Inputs()
	if len(pins) != len(ins) {
		b.err = fmt.Errorf("cdet: %s takes %d inputs, got %d", cell, len(pins), len(ins))
		return
	}
	for i, p := range pins {
		if err := b.m.Connect(in, p, ins[i]); err != nil {
			b.err = fmt.Errorf("cdet: %w", err)
			return
		}
	}
	if err := b.m.Connect(in, in.Cell.Outputs()[0], out); err != nil {
		b.err = fmt.Errorf("cdet: %w", err)
	}
}

// and2 returns a&b as a fresh net.
func (b *builder) and2(a, c *netlist.Net) *netlist.Net {
	z := b.fresh("a")
	b.gate("AND2X1", "and", []*netlist.Net{a, c}, z)
	b.res.RailCells++
	return z
}

// andTree conjoins nets.
func (b *builder) andTree(ns []*netlist.Net, count *int) *netlist.Net {
	for len(ns) > 1 {
		var next []*netlist.Net
		for i := 0; i < len(ns); i += 2 {
			if i+1 == len(ns) {
				next = append(next, ns[i])
				continue
			}
			z := b.fresh("t")
			b.gate("AND2X1", "ta", []*netlist.Net{ns[i], ns[i+1]}, z)
			*count++
			next = append(next, z)
		}
		ns = next
	}
	return ns[0]
}

// orTree disjoins nets.
func (b *builder) orTree(ns []*netlist.Net, count *int) *netlist.Net {
	for len(ns) > 1 {
		var next []*netlist.Net
		for i := 0; i < len(ns); i += 2 {
			if i+1 == len(ns) {
				next = append(next, ns[i])
				continue
			}
			z := b.fresh("o")
			b.gate("OR2X1", "or", []*netlist.Net{ns[i], ns[i+1]}, z)
			*count++
			next = append(next, z)
		}
		ns = next
	}
	return ns[0]
}

// AddCompletionNetwork shadows the given cloud gates with a dual-rail
// completion network. go gates the rails (request in); done rises once all
// detected outputs have resolved and falls when go falls. detect lists the
// single-rail output nets whose resolution completes the region (typically
// the nets feeding the region's latches). marginLevels appends an
// AND-chain delay to done for extra safety.
func AddCompletionNetwork(m *netlist.Module, lib *netlist.Library, prefix string,
	cloud []*netlist.Inst, detect []*netlist.Net, goNet, done *netlist.Net, marginLevels int) (*Result, error) {

	b := &builder{m: m, lib: lib, prefix: prefix}
	inCloud := map[*netlist.Inst]bool{}
	for _, g := range cloud {
		if g.Cell == nil || g.Cell.Kind != netlist.KindComb {
			return nil, fmt.Errorf("cdet: %s is not a combinational gate", g.Name)
		}
		inCloud[g] = true
	}

	// Topological order over cloud-internal edges.
	order, err := levelize(cloud, inCloud)
	if err != nil {
		return nil, err
	}

	rails := map[*netlist.Net]railPair{}
	// Boundary inputs: nets feeding cloud gates from outside the cloud.
	boundary := map[*netlist.Net]bool{}
	for _, g := range cloud {
		for _, pc := range g.Conns() {
			pin, n := pc.Pin, pc.Net
			if g.Cell.Pin(pin).Dir != netlist.In {
				continue
			}
			if drv := n.Driver.Inst; drv == nil || !inCloud[drv] {
				boundary[n] = true
			}
		}
	}
	var bnets []*netlist.Net
	for n := range boundary {
		bnets = append(bnets, n)
	}
	sort.Slice(bnets, func(i, j int) bool { return bnets[i].Name < bnets[j].Name })
	for _, n := range bnets {
		t := b.fresh("it")
		f := b.fresh("if")
		b.gate("AND2X1", "in", []*netlist.Net{goNet, n}, t)
		b.gate("ANDN2X1", "inn", []*netlist.Net{goNet, n}, f)
		b.res.RailCells += 2
		rails[n] = railPair{t, f}
	}
	b.res.Inputs = len(bnets)

	// Dual-rail image of every cloud gate, in topological order.
	for _, g := range order {
		if err := b.imageGate(g, rails); err != nil {
			return nil, err
		}
	}

	// Completion: AND over per-output validity.
	var valids []*netlist.Net
	for _, n := range detect {
		rp, ok := rails[n]
		if !ok {
			return nil, fmt.Errorf("cdet: detected net %s has no rails (not in the cloud?)", n.Name)
		}
		v := b.fresh("v")
		b.gate("OR2X1", "valid", []*netlist.Net{rp.t, rp.f}, v)
		b.res.DetectCells++
		valids = append(valids, v)
	}
	if len(valids) == 0 {
		return nil, fmt.Errorf("cdet: nothing to detect")
	}
	b.res.Outputs = len(detect)
	all := b.andTree(valids, &b.res.DetectCells)

	// Margin chain: asymmetric (slow-rise) ANDs gated by go so the fall is
	// fast when the request withdraws.
	prev := all
	for i := 0; i < marginLevels; i++ {
		z := b.fresh("m")
		b.gate("AND2X1", "margin", []*netlist.Net{prev, all}, z)
		b.res.DetectCells++
		prev = z
	}
	b.gate("BUFX2", "done", []*netlist.Net{prev}, done)
	if b.err != nil {
		return nil, b.err
	}
	b.res.DoneInst = done.Driver.Inst.Name
	b.res.DetectCells++
	return &b.res, nil
}

// imageGate builds the dual-rail image of one gate.
func (b *builder) imageGate(g *netlist.Inst, rails map[*netlist.Net]railPair) error {
	fn := g.Cell.Functions[g.Cell.Outputs()[0]]
	if fn == nil || len(g.Cell.Outputs()) != 1 {
		return fmt.Errorf("cdet: gate %s (%s) unsupported", g.Name, g.Cell.Name)
	}
	outNet := g.Conn(g.Cell.Outputs()[0])
	vars := fn.Vars()

	// Free cases: buffer and inverter are rail rewires.
	if inv, ok := g.Cell.IsBufferLike(); ok {
		in := g.Conn(g.Cell.Inputs()[0])
		rp, ok := rails[in]
		if !ok {
			return fmt.Errorf("cdet: missing rails for %s", in.Name)
		}
		if inv {
			rails[outNet] = railPair{t: rp.f, f: rp.t}
		} else {
			rails[outNet] = rp
		}
		return nil
	}
	if len(vars) > 4 {
		return fmt.Errorf("cdet: gate %s has %d inputs; DIMS image too wide", g.Name, len(vars))
	}

	// Collect input rails in variable order.
	inRails := make([]railPair, len(vars))
	for i, v := range vars {
		n := g.Conn(v)
		if n == nil {
			return fmt.Errorf("cdet: %s pin %s unconnected", g.Name, v)
		}
		rp, ok := rails[n]
		if !ok {
			return fmt.Errorf("cdet: missing rails for %s into %s", n.Name, g.Name)
		}
		inRails[i] = rp
	}

	// Weak-indicating rails: one product per PRIME implicant, so the rail
	// fires as soon as any controlling subset of inputs has arrived (an AND
	// gate's false rail rises off a single 0 input). This is what makes the
	// completion data-dependent — DIMS-style minterm sums would wait for
	// every input and degenerate to critical-path timing.
	t := b.railFromPrimes(fn, vars, inRails, true)
	f := b.railFromPrimes(fn, vars, inRails, false)
	rails[outNet] = railPair{t, f}
	return b.err
}

// railFromPrimes builds OR over a minimal cover of prime implicants of fn
// (or its complement) as rail products. A cover (rather than all primes)
// keeps the area near the paper's ~2x figure: the dropped consensus terms
// could only make completion earlier, never wrong, since rails are
// monotone and every on-set minterm stays covered.
func (b *builder) railFromPrimes(fn *logic.Expr, vars []string, inRails []railPair, phase bool) *netlist.Net {
	primes := coverPrimes(fn, vars, phase)
	if len(primes) == 0 {
		return b.constRail(false)
	}
	var terms []*netlist.Net
	for _, cube := range primes {
		var lits []*netlist.Net
		for i, lit := range cube {
			switch lit {
			case cube1:
				lits = append(lits, inRails[i].t)
			case cube0:
				lits = append(lits, inRails[i].f)
			}
		}
		if len(lits) == 0 {
			// Constant function: should not occur for library gates.
			return b.constRail(true)
		}
		terms = append(terms, b.andTree(lits, &b.res.RailCells))
	}
	return b.orTree(terms, &b.res.RailCells)
}

// Cube literal values.
const (
	cube0 = 0
	cube1 = 1
	cubeX = 2
)

// primeImplicants enumerates the prime implicants of fn (phase=true) or its
// complement (phase=false) over up to 4 variables by exhaustive cube
// checking (3^k cubes).
func primeImplicants(fn *logic.Expr, vars []string, phase bool) [][]int {
	k := len(vars)
	want := logic.L
	if phase {
		want = logic.H
	}
	env := map[string]logic.V{}
	isImplicant := func(cube []int) bool {
		// Every minterm covered by the cube must evaluate to want.
		free := 0
		for _, l := range cube {
			if l == cubeX {
				free++
			}
		}
		for m := 0; m < 1<<free; m++ {
			bit := 0
			for i, l := range cube {
				v := l
				if l == cubeX {
					v = m >> bit & 1
					bit++
				}
				env[vars[i]] = logic.FromBool(v == 1)
			}
			if fn.Eval(env) != want {
				return false
			}
		}
		return true
	}
	// Enumerate all cubes (base-3 counting).
	total := 1
	for i := 0; i < k; i++ {
		total *= 3
	}
	var implicants [][]int
	for c := 0; c < total; c++ {
		cube := make([]int, k)
		x := c
		for i := 0; i < k; i++ {
			cube[i] = x % 3
			x /= 3
		}
		if isImplicant(cube) {
			implicants = append(implicants, cube)
		}
	}
	// Prime: no implicant strictly contains it (same literals with one or
	// more replaced by X).
	contains := func(big, small []int) bool {
		for i := range big {
			if big[i] != cubeX && big[i] != small[i] {
				return false
			}
		}
		return true
	}
	var primes [][]int
	for i, c := range implicants {
		prime := true
		for j, d := range implicants {
			if i == j {
				continue
			}
			if contains(d, c) && !equalCube(d, c) {
				prime = false
				break
			}
		}
		if prime {
			primes = append(primes, c)
		}
	}
	return primes
}

func equalCube(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// coverPrimes selects a greedy minimal cover of the on-set (phase) from the
// prime implicants: repeatedly pick the prime covering the most uncovered
// minterms, tie-breaking on fewer literals.
func coverPrimes(fn *logic.Expr, vars []string, phase bool) [][]int {
	primes := primeImplicants(fn, vars, phase)
	if len(primes) == 0 {
		return nil
	}
	k := len(vars)
	want := logic.L
	if phase {
		want = logic.H
	}
	// On-set minterms.
	env := map[string]logic.V{}
	var minterms []int
	for m := 0; m < 1<<k; m++ {
		for i, v := range vars {
			env[v] = logic.FromBool(m>>i&1 == 1)
		}
		if fn.Eval(env) == want {
			minterms = append(minterms, m)
		}
	}
	covers := func(cube []int, m int) bool {
		for i, l := range cube {
			if l == cubeX {
				continue
			}
			if (m>>i&1 == 1) != (l == cube1) {
				return false
			}
		}
		return true
	}
	literals := func(cube []int) int {
		n := 0
		for _, l := range cube {
			if l != cubeX {
				n++
			}
		}
		return n
	}
	uncovered := map[int]bool{}
	for _, m := range minterms {
		uncovered[m] = true
	}
	var chosen [][]int
	for len(uncovered) > 0 {
		best, bestGain := -1, -1
		for pi, p := range primes {
			gain := 0
			for m := range uncovered {
				if covers(p, m) {
					gain++
				}
			}
			if gain > bestGain || (gain == bestGain && best >= 0 && literals(p) < literals(primes[best])) {
				best, bestGain = pi, gain
			}
		}
		if bestGain <= 0 {
			break // should not happen: primes cover the on-set
		}
		chosen = append(chosen, primes[best])
		for m := range uncovered {
			if covers(primes[best], m) {
				delete(uncovered, m)
			}
		}
	}
	return chosen
}

// constRail returns a tie net for degenerate constant rails.
func (b *builder) constRail(v bool) *netlist.Net {
	name := b.prefix + "/rail0"
	cell := "TIE0"
	if v {
		name, cell = b.prefix+"/rail1", "TIE1"
	}
	if n := b.m.Net(name); n != nil {
		return n
	}
	n := b.m.AddNet(name)
	b.gate(cell, "tie", nil, n)
	return n
}

// levelize returns the cloud gates in topological order.
func levelize(cloud []*netlist.Inst, inCloud map[*netlist.Inst]bool) ([]*netlist.Inst, error) {
	indeg := map[*netlist.Inst]int{}
	succs := map[*netlist.Inst][]*netlist.Inst{}
	for _, g := range cloud {
		indeg[g] += 0
		for _, pc := range g.Conns() {
			pin, n := pc.Pin, pc.Net
			if g.Cell.Pin(pin).Dir != netlist.In {
				continue
			}
			if drv := n.Driver.Inst; drv != nil && inCloud[drv] {
				succs[drv] = append(succs[drv], g)
				indeg[g]++
			}
		}
	}
	queue := append([]*netlist.Inst(nil), cloud...)
	sort.Slice(queue, func(i, j int) bool { return queue[i].Name < queue[j].Name })
	var ready []*netlist.Inst
	for _, g := range queue {
		if indeg[g] == 0 {
			ready = append(ready, g)
		}
	}
	var order []*netlist.Inst
	for len(ready) > 0 {
		g := ready[0]
		ready = ready[1:]
		order = append(order, g)
		for _, s := range succs[g] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(order) != len(cloud) {
		return nil, fmt.Errorf("cdet: combinational loop in cloud")
	}
	return order, nil
}

// Used reports whether the module contains a completion-detection network
// built by AddCompletionNetwork. Downstream tools that model only the
// matched-delay controller style (internal/equiv) use this to refuse
// dual-rail designs explicitly instead of mis-modelling them.
func Used(m *netlist.Module) bool {
	for _, in := range m.Insts {
		if strings.Contains(in.Name, "_cdet/") {
			return true
		}
	}
	return false
}
