package faults

import (
	"context"
	"fmt"
	"sort"

	"desync/internal/ctrlnet"
	"desync/internal/logic"
	"desync/internal/netlist"
	"desync/internal/par"
	"desync/internal/sim"
)

// Config sets up a campaign against one desynchronized module.
type Config struct {
	// Corner and Scale select the simulation point (as sim.Config).
	Corner netlist.Corner
	Scale  float64
	// Stimulus drives the primary inputs of a fresh simulator (reset
	// sequencing, tap selection). It runs before any fault is applied.
	Stimulus func(s *sim.Simulator) error
	// Horizon bounds every run (ns).
	Horizon float64
	// QuiescenceGap arms the deadlock watchdog: the handshake nets must not
	// stop cycling more than this long (ns) before the horizon.
	QuiescenceGap float64
	// SetupGuard arms the latch setup monitor.
	SetupGuard bool
	// LivenessFraction classifies a register as stalled when it captures
	// fewer than this fraction of the unfaulted run's captures; 0 means 0.5.
	LivenessFraction float64
	// MaxEventsFactor bounds faulted runs at this multiple of the unfaulted
	// run's event count (oscillating faults abort instead of spinning);
	// 0 means 4.
	MaxEventsFactor float64
	// Parallelism bounds the worker count when Run fans the faults out;
	// 0 means GOMAXPROCS. The report is identical at any value: every
	// fault gets its own simulator (delay faults ride a per-sim factor
	// snapshot, never instance state), classification is pure, and the
	// outcomes merge in fault order.
	Parallelism int
	// Seed roots the campaign's randomization. Each faulted run mixes its
	// fault index into it (DeriveSeed), so runs draw independent streams and
	// any single fault reproduces standalone from (Seed, index); 0 is a
	// valid root (recorded as such).
	Seed int64
	// Jitter, when positive, perturbs every non-faulted instance's delay by
	// a uniform factor in [1-Jitter, 1+Jitter] per faulted run (seeded as
	// above): the campaign then also samples whether detection survives
	// benign delay variation instead of only the nominal interleaving.
	// 0 disables.
	Jitter float64
}

// eventBudgetHeadroom pads the faulted runs' event budget above the
// golden-run multiple, so short golden runs still leave room for a fault's
// extra switching before the oscillation guard trips.
const eventBudgetHeadroom = 100_000

// Campaign holds the design under test and the golden (unfaulted) reference
// run every faulted run is classified against.
type Campaign struct {
	M   *netlist.Module
	cfg Config

	// Golden-run observables.
	goldenCaptures map[string][]logic.V
	goldenEvents   int64
	netToggles     map[string]int64
	// lastGoldenX is when the boot transient's last X capture happened; the
	// faulted runs' X guard opens just after it.
	lastGoldenX float64
	// effPeriod estimates the design's effective handshake period from the
	// golden capture cadence; delay-fault factors are scaled against it.
	effPeriod float64

	cn        *ctrlnet.Network
	handshake []string
	regions   []int
}

// NewCampaign discovers the design's regions and handshake nets, then runs
// the unfaulted reference simulation with every watchdog armed. A clean
// design must produce zero diagnostics — anything else is a config or flow
// bug, reported as an error here rather than silently polluting every
// classification after it. After construction the module is treated as
// read-only: faulted runs never mutate it, so Run can fan them out.
func NewCampaign(ctx context.Context, m *netlist.Module, cfg Config) (*Campaign, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cfg.Stimulus == nil {
		return nil, fmt.Errorf("faults: config needs a Stimulus function")
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("faults: config needs a positive Horizon")
	}
	if cfg.LivenessFraction == 0 {
		cfg.LivenessFraction = 0.5
	}
	if cfg.MaxEventsFactor == 0 {
		cfg.MaxEventsFactor = 4
	}
	c := &Campaign{M: m, cfg: cfg, cn: ctrlnet.Derive(m)}

	if c.cn.Empty() {
		return nil, fmt.Errorf("faults: module %s has no desynchronized regions", m.Name)
	}
	c.regions = append(c.regions, c.cn.Regions...)
	for _, g := range c.regions {
		for _, suffix := range []string{"mri", "sri"} {
			if n := c.cn.ControlNet(g, suffix); n != nil {
				c.handshake = append(c.handshake, n.Name)
			}
		}
	}
	if len(c.handshake) == 0 {
		return nil, fmt.Errorf("faults: module %s has no handshake nets (not desynchronized?)", m.Name)
	}

	// Golden run: X guard off (the design boots through X), everything else
	// armed.
	s, err := c.newSim(0, -1, nil)
	if err != nil {
		return nil, err
	}
	if err := s.Run(cfg.Horizon); err != nil {
		return nil, fmt.Errorf("faults: golden run failed: %w", err)
	}
	if diags := s.Diagnostics(); len(diags) > 0 {
		return nil, fmt.Errorf("faults: golden run tripped the watchdog: %s (and %d more)",
			diags[0], len(diags)-1)
	}
	c.goldenCaptures = s.Captures
	c.goldenEvents = s.Events()
	c.netToggles = make(map[string]int64, len(m.Nets))
	for i, n := range m.Nets {
		c.netToggles[n.Name] = s.Toggles[i]
	}
	for name, vals := range s.Captures {
		for k, v := range vals {
			if v == logic.X && s.CaptureTimes[name][k] > c.lastGoldenX {
				c.lastGoldenX = s.CaptureTimes[name][k]
			}
		}
	}
	busiest := busiestCaptureTrain(s.CaptureTimes)
	if n := len(busiest); n >= 3 {
		// Skip the first interval: the boot handshake is not steady-state.
		c.effPeriod = (busiest[n-1] - busiest[1]) / float64(n-2)
	} else {
		c.effPeriod = cfg.Horizon / 4
	}
	if len(c.goldenCaptures) == 0 {
		return nil, fmt.Errorf("faults: golden run captured nothing (bad stimulus or horizon?)")
	}
	return c, nil
}

// Regions lists the desynchronized region ids of the design under test.
func (c *Campaign) Regions() []int { return append([]int(nil), c.regions...) }

// GoldenEvents reports the unfaulted run's event count (the budget base).
func (c *Campaign) GoldenEvents() int64 { return c.goldenEvents }

// newSim builds a stimulated simulator with the watchdog armed.
// xAfter < 0 disables the X-capture guard (golden run); maxEvents 0 keeps
// the simulator default; factors are per-sim delay-factor overrides
// (delay-fault injection without touching the shared module).
func (c *Campaign) newSim(maxEvents int64, xAfter float64, factors map[string]float64) (*sim.Simulator, error) {
	return c.newScenarioSim(maxEvents, xAfter, factors, 1, nil)
}

// newScenarioSim is newSim at an arbitrary operating point: the global
// scale multiplies the campaign corner's scale (and the quiescence gap, so
// the deadlock verdict tracks the stretched time axis), and interrupt is
// polled inside Run for deadlines and cancellation.
func (c *Campaign) newScenarioSim(maxEvents int64, xAfter float64, factors map[string]float64, scale float64, interrupt func() error) (*sim.Simulator, error) {
	base := c.cfg.Scale
	if base == 0 {
		base = 1
	}
	s, err := sim.New(c.M, sim.Config{
		Corner: c.cfg.Corner, Scale: base * scale, MaxEvents: maxEvents,
		DelayFactors: factors, Interrupt: interrupt,
	})
	if err != nil {
		return nil, err
	}
	if err := s.Watch(sim.WatchdogConfig{
		HandshakeNets: c.handshake,
		QuiescenceGap: c.cfg.QuiescenceGap * scale,
		SetupGuard:    c.cfg.SetupGuard,
		XCaptureAfter: xAfter,
	}); err != nil {
		return nil, err
	}
	if err := c.cfg.Stimulus(s); err != nil {
		return nil, err
	}
	return s, nil
}

// RunFault injects one fault at the campaign's nominal operating point,
// simulates to the campaign horizon and classifies the outcome against the
// golden run. The design is never mutated: delay faults ride a per-sim
// delay-factor snapshot and forces live only inside the simulator, so
// concurrent RunFault calls are safe.
func (c *Campaign) RunFault(ctx context.Context, f Fault) (Outcome, error) {
	return c.RunScenario(ctx, Scenario{Fault: f})
}

// classify fills Detected/By/Detail, strongest evidence first: a corrupted
// capture sequence beats a stall, a stall beats a watchdog report, and a
// simulator abort (event budget — oscillation) catches the rest.
func (c *Campaign) classify(out *Outcome, s *sim.Simulator, runErr error) {
	names := make([]string, 0, len(c.goldenCaptures))
	for name := range c.goldenCaptures {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		want, got := c.goldenCaptures[name], s.Captures[name]
		n := len(want)
		if len(got) < n {
			n = len(got)
		}
		for k := 0; k < n; k++ {
			if got[k] != want[k] {
				out.Detected, out.By = true, ByFlowMismatch
				out.Detail = fmt.Sprintf("%s capture %d: golden %v, faulted %v", name, k, want[k], got[k])
				return
			}
		}
	}
	for _, name := range names {
		want := len(c.goldenCaptures[name])
		if want < 2 {
			continue
		}
		if got := len(s.Captures[name]); float64(got) < c.cfg.LivenessFraction*float64(want) {
			out.Detected, out.By = true, ByLiveness
			out.Detail = fmt.Sprintf("%s captured %d of %d golden values", name, got, want)
			return
		}
	}
	if len(out.Diags) > 0 {
		out.Detected, out.By = true, ByWatchdog
		out.Detail = out.Diags[0].String()
		return
	}
	if runErr != nil {
		out.Detected, out.By = true, BySimError
		out.Detail = runErr.Error()
		return
	}
	out.By = NotDetected
}

// Run injects every fault — fanned out over cfg.Parallelism workers, one
// simulator per fault — and aggregates the outcomes in fault order, so the
// report is byte-identical at any worker count. The first failing fault
// (lowest index) aborts the campaign, as the serial loop did. Each run's
// randomization (Config.Jitter) mixes the fault's index into Config.Seed,
// so the streams are independent and each reproduces standalone.
func (c *Campaign) Run(ctx context.Context, faults []Fault) (*Report, error) {
	outs, err := par.Map(ctx, c.cfg.Parallelism, faults, func(ctx context.Context, i int, f Fault) (Outcome, error) {
		o, err := c.RunScenario(ctx, Scenario{Fault: f, Index: int64(i)})
		if err != nil {
			return o, fmt.Errorf("faults: %s: %w", f, err)
		}
		return o, nil
	})
	if err != nil {
		return nil, err
	}
	return &Report{Outcomes: outs}, nil
}

// DelayFaults enumerates per-instance delay faults: for each region, up to
// perRegion datapath gates that directly drive a latch data pin whose
// golden captures contain known values (the most active such gates first).
// Each gate's factor is at least the given one, raised when needed so the
// inflated delay spans several effective periods — the fault is then
// provably under-margin (the matched element cannot cover it), which is
// the class the flow promises to survive detection of. A short-path gate
// slowed by a small constant factor can still fit inside the region's
// slack and the latch transparency window; such a "fault" is not a fault,
// and enumerating it would only measure the test's own optimism.
func (c *Campaign) DelayFaults(factor float64, perRegion int) []Fault {
	type cand struct {
		name    string
		factor  float64
		toggles int64
	}
	drivesObservedLatch := func(in *netlist.Inst) bool {
		for _, p := range in.Cell.Pins {
			if p.Dir != netlist.Out {
				continue
			}
			n := in.Conn(p.Name)
			if n == nil {
				continue
			}
			for _, sk := range n.Sinks {
				if sk.Inst == nil || sk.Inst.Cell == nil || sk.Inst.Cell.Kind != netlist.KindLatch {
					continue
				}
				pin := sk.Inst.Cell.Pin(sk.Pin)
				if pin == nil || pin.Class != netlist.ClassData {
					continue
				}
				for _, v := range c.goldenCaptures[sk.Inst.Name] {
					if v != logic.X {
						return true
					}
				}
			}
		}
		return false
	}
	worstArc := func(cell *netlist.CellDef) float64 {
		d := 0.0
		for _, a := range cell.Arcs {
			if r := a.Rise.At(c.cfg.Corner); r > d {
				d = r
			}
			if fa := a.Fall.At(c.cfg.Corner); fa > d {
				d = fa
			}
		}
		return d
	}
	byRegion := map[int][]cand{}
	for _, in := range c.M.Insts {
		if in.Group <= 0 || in.Origin != "" || in.Cell == nil || in.Cell.Kind != netlist.KindComb {
			continue
		}
		base := worstArc(in.Cell)
		if base <= 0 || !drivesObservedLatch(in) {
			continue
		}
		var t int64
		for _, p := range in.Cell.Pins {
			if p.Dir != netlist.Out {
				continue
			}
			if n := in.Conn(p.Name); n != nil {
				t += c.netToggles[n.Name]
			}
		}
		if t == 0 {
			continue // never switched in the golden run: no observable path
		}
		f := factor
		if min := 3 * c.effPeriod / base; f < min {
			f = min
		}
		byRegion[in.Group] = append(byRegion[in.Group], cand{in.Name, f, t})
	}
	var out []Fault
	for _, g := range c.regions {
		cands := byRegion[g]
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].toggles != cands[j].toggles {
				return cands[i].toggles > cands[j].toggles
			}
			return cands[i].name < cands[j].name
		})
		for i := 0; i < perRegion && i < len(cands); i++ {
			out = append(out, Fault{Class: ClassDelay, Inst: cands[i].name, Factor: cands[i].factor})
		}
	}
	return out
}

// ControlStuckFaults enumerates stuck-at-0/1 faults on the regions' control
// nets. With no suffixes given it covers the master request, slave
// acknowledge and both latch-enable nets of every region; pass explicit
// suffixes (mri, mai, mro, sri, sai, sro, gm, gs) to widen or narrow.
func (c *Campaign) ControlStuckFaults(suffixes ...string) []Fault {
	if len(suffixes) == 0 {
		suffixes = []string{"mri", "sai", "gm", "gs"}
	}
	var out []Fault
	for _, g := range c.regions {
		for _, suffix := range suffixes {
			n := c.cn.ControlNet(g, suffix)
			if n == nil {
				continue
			}
			for _, v := range []logic.V{logic.L, logic.H} {
				out = append(out, Fault{Class: ClassStuckAt, Net: n.Name, Value: v})
			}
		}
	}
	return out
}

// GlitchFaults enumerates one pulse per region and suffix, forced at time
// at for width ns. Glitches are the class that may legitimately escape: a
// pulse that lands while the net already holds that value, or outside the
// controller's sensitive window, is absorbed — which is exactly what a
// campaign is for measuring.
func (c *Campaign) GlitchFaults(at, width float64, suffixes ...string) []Fault {
	if len(suffixes) == 0 {
		suffixes = []string{"mai", "sai"}
	}
	var out []Fault
	for _, g := range c.regions {
		for _, suffix := range suffixes {
			n := c.cn.ControlNet(g, suffix)
			if n == nil {
				continue
			}
			for _, v := range []logic.V{logic.L, logic.H} {
				out = append(out, Fault{Class: ClassGlitch, Net: n.Name, Value: v, At: at, Width: width})
			}
		}
	}
	return out
}
