package variability

import (
	"math/rand"
	"testing"

	"desync/internal/netlist"
	"desync/internal/stdcells"
)

func TestSampleDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	chips := Sample(rng, 4000, 1.0/6)
	var sum float64
	for _, c := range chips {
		if c.Theta < 0 || c.Theta > 1 {
			t.Fatalf("theta out of range: %v", c.Theta)
		}
		sum += c.Theta
	}
	mean := sum / float64(len(chips))
	if mean < 0.45 || mean > 0.55 {
		t.Fatalf("mean theta %.3f, want ~0.5", mean)
	}
	// Scale spans [1, spread].
	if (Chip{Theta: 0}).Scale() != 1 {
		t.Fatal("theta 0 must be the best corner")
	}
	if (Chip{Theta: 1}).Scale() != stdcells.CornerSpread {
		t.Fatal("theta 1 must be the worst corner")
	}
	if WorstCaseScale() != stdcells.CornerSpread {
		t.Fatal("worst-case scale mismatch")
	}
}

func TestIntraDie(t *testing.T) {
	lib := stdcells.New(stdcells.HighSpeed)
	m := netlist.NewModule("m")
	for i := 0; i < 200; i++ {
		in := m.AddInst(string(rune('a'+i%26))+string(rune('0'+i/26)), lib.MustCell("INVX1"))
		_ = in
	}
	rng := rand.New(rand.NewSource(2))
	ApplyIntraDie(m, 0.05, rng)
	varied := 0
	for _, in := range m.Insts {
		if in.DelayFactor < 0.85 || in.DelayFactor > 1.15 {
			t.Fatalf("factor %v outside clamp", in.DelayFactor)
		}
		if in.DelayFactor != 1 {
			varied++
		}
	}
	if varied < 150 {
		t.Fatal("intra-die factors not applied")
	}
	ResetIntraDie(m)
	for _, in := range m.Insts {
		if in.DelayFactor != 1 {
			t.Fatal("reset failed")
		}
	}
}
