package lint

import (
	"fmt"
	"sort"
	"strings"

	"desync/internal/core"
	"desync/internal/ctrlnet"
	"desync/internal/handshake"
	"desync/internal/netlist"
)

// isControlInst reports whether an instance belongs to an inserted
// clock-replacement network rather than the datapath. In-memory designs
// carry Origin tags; designs re-read from Verilog only keep the naming
// schemes (G<id>_ for per-region cells, TPgen for the two-phase generator
// core), so both tests run. Control cells are exempt from the
// synchronous-netlist rules (their loops are the handshakes or the ring
// oscillator themselves) and are checked by the DS-*/TP-* families
// instead.
func isControlInst(in *netlist.Inst) bool {
	if handshake.IsControlOrigin(in.Origin) {
		return true
	}
	if ctrlnet.IsTPGenName(in.Name) {
		return true
	}
	_, ok := ctrlnet.Region(in.Name)
	return ok
}

// combDatapath reports whether the instance is a plain combinational
// datapath gate: the population the loop and dead-cone rules apply to.
func combDatapath(in *netlist.Inst) bool {
	return in.Cell != nil && in.Cell.Kind == netlist.KindComb && !isControlInst(in)
}

// pinDirOf resolves a connection's direction for cell and submodule
// instances alike; ok is false for pins the instance does not declare.
func pinDirOf(in *netlist.Inst, pin string) (netlist.PinDir, bool) {
	if in.Cell != nil {
		if pd := in.Cell.Pin(pin); pd != nil {
			return pd.Dir, true
		}
		return netlist.In, false
	}
	if p := in.Sub.Port(pin); p != nil {
		return p.Dir, true
	}
	return netlist.In, false
}

// checkNetlist runs the NL-* family over one module.
func (r *Report) checkNetlist(m *netlist.Module, opts Options) {
	// NL-VALIDATE — structural invariants. Undriven nets are left to
	// NL-FLOAT, which locates them properly and honors MidFlow.
	for _, ve := range m.Validate(netlist.ValidateOptions{AllowUndriven: true}) {
		r.addf(RuleValidate, Error, m.Name, "", "", "["+ve.Rule+"] "+ve.Msg)
	}

	r.checkPins(m)
	if !opts.MidFlow {
		r.checkFloat(m)
	}
	r.checkMultiDriven(m)
	r.checkCombLoops(m)
	r.checkDeadCones(m)
	r.checkNameClash(m)
}

// checkPins flags unconnected instance pins: inputs as errors (the gate
// computes garbage), outputs as warnings (dead result, possibly intended).
func (r *Report) checkPins(m *netlist.Module) {
	for _, in := range m.Insts {
		var pins []netlist.PinDef
		if in.Cell != nil {
			pins = in.Cell.Pins
		} else if in.Sub != nil {
			for _, p := range in.Sub.Ports {
				pins = append(pins, netlist.PinDef{Name: p.Name, Dir: p.Dir})
			}
		}
		for _, p := range pins {
			if in.Conn(p.Name) != nil {
				continue
			}
			sev := Error
			if p.Dir == netlist.Out {
				sev = Warning
			}
			r.addf(RulePin, sev, m.Name, in.Name, "",
				fmt.Sprintf("pin %s (%s) is unconnected", p.Name, p.Dir))
		}
	}
}

// checkFloat flags nets that are read but never driven.
func (r *Report) checkFloat(m *netlist.Module) {
	for _, n := range m.Nets {
		if len(n.Sinks) > 0 && !n.HasDriver() {
			r.addf(RuleFloat, Error, m.Name, "", n.Name,
				fmt.Sprintf("net has %d sink(s) but no driver", len(n.Sinks)))
		}
	}
}

// checkMultiDriven counts a net's true drivers — output pins plus input
// ports — from the connection maps (not the per-net bookkeeping, which by
// construction can only remember one driver and so cannot show the clash).
func (r *Report) checkMultiDriven(m *netlist.Module) {
	drivers := map[*netlist.Net][]string{}
	for _, in := range m.Insts {
		for _, pc := range in.Conns() {
			pin, n := pc.Pin, pc.Net
			if n == nil {
				continue
			}
			if dir, ok := pinDirOf(in, pin); ok && dir == netlist.Out {
				drivers[n] = append(drivers[n], in.Name+"/"+pin)
			}
		}
	}
	for _, p := range m.Ports {
		if p.Dir == netlist.In && p.Net != nil {
			drivers[p.Net] = append(drivers[p.Net], "port "+p.Name)
		}
	}
	for _, n := range m.SortedNets() {
		if ds := drivers[n]; len(ds) > 1 {
			sort.Strings(ds)
			r.addf(RuleMulti, Error, m.Name, "", n.Name,
				fmt.Sprintf("net driven %d times: %s", len(ds), strings.Join(ds, ", ")))
		}
	}
}

// checkCombLoops finds cycles among plain combinational datapath gates. A
// synchronous netlist must be acyclic between registers; a loop means lost
// logic (or an async element mis-imported as gates). Control cells are
// excluded — their loops are the handshake cycles DS-SDC audits.
func (r *Report) checkCombLoops(m *netlist.Module) {
	// Adjacency over comb datapath instances.
	idx := map[*netlist.Inst]int{}
	var nodes []*netlist.Inst
	for _, in := range m.Insts {
		if combDatapath(in) {
			idx[in] = len(nodes)
			nodes = append(nodes, in)
		}
	}
	succ := make([][]int, len(nodes))
	indeg := make([]int, len(nodes))
	for _, in := range nodes {
		u := idx[in]
		for _, pc := range in.Conns() {
			pin, n := pc.Pin, pc.Net
			if dir, ok := pinDirOf(in, pin); !ok || dir != netlist.Out || n == nil {
				continue
			}
			for _, s := range n.Sinks {
				if s.Inst == nil {
					continue
				}
				if v, ok := idx[s.Inst]; ok {
					succ[u] = append(succ[u], v)
					indeg[v]++
				}
			}
		}
	}
	// Trim everything not on a cycle: peel zero-in-degree nodes forward,
	// then zero-out-degree nodes backward, so pure fan-in and fan-out of a
	// loop drop away and only the cycle members remain.
	queue := []int{}
	for v, d := range indeg {
		if d == 0 {
			queue = append(queue, v)
		}
	}
	removed := make([]bool, len(nodes))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		removed[u] = true
		for _, v := range succ[u] {
			if indeg[v]--; indeg[v] == 0 && !removed[v] {
				queue = append(queue, v)
			}
		}
	}
	pred := make([][]int, len(nodes))
	outdeg := make([]int, len(nodes))
	for u, vs := range succ {
		if removed[u] {
			continue
		}
		for _, v := range vs {
			if !removed[v] {
				pred[v] = append(pred[v], u)
				outdeg[u]++
			}
		}
	}
	for v := range nodes {
		if !removed[v] && outdeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		removed[u] = true
		for _, v := range pred[u] {
			if outdeg[v]--; outdeg[v] == 0 && !removed[v] {
				queue = append(queue, v)
			}
		}
	}
	// Group survivors into weakly-connected clusters for one finding per
	// loop nest, naming a bounded sample of members.
	seen := make([]bool, len(nodes))
	for v := range nodes {
		if removed[v] || seen[v] {
			continue
		}
		var member []string
		stack := []int{v}
		seen[v] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			member = append(member, nodes[u].Name)
			for _, w := range succ[u] {
				if !removed[w] && !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		sort.Strings(member)
		sample := member
		if len(sample) > 6 {
			sample = sample[:6]
		}
		r.addf(RuleLoop, Error, m.Name, member[0], "",
			fmt.Sprintf("combinational loop through %d gate(s): %s", len(member), strings.Join(sample, ", ")))
	}
}

// checkDeadCones flags combinational gates whose outputs never reach an
// observable point: an output port, a sequential or submodule input, or the
// control network. Dead cones are harmless in silicon but always mean
// either imported garbage or a flow stage that disconnected logic.
func (r *Report) checkDeadCones(m *netlist.Module) {
	observed := map[*netlist.Net]bool{}
	var frontier []*netlist.Net
	observe := func(n *netlist.Net) {
		if n != nil && !observed[n] {
			observed[n] = true
			frontier = append(frontier, n)
		}
	}
	for _, p := range m.Ports {
		if p.Dir == netlist.Out {
			observe(p.Net)
		}
	}
	for _, in := range m.Insts {
		if combDatapath(in) {
			continue
		}
		for _, pc := range in.Conns() {
			pin, n := pc.Pin, pc.Net
			if dir, ok := pinDirOf(in, pin); ok && dir == netlist.In {
				observe(n)
			}
		}
	}
	live := map[*netlist.Inst]bool{}
	for len(frontier) > 0 {
		n := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		drv := n.Driver.Inst
		if drv == nil || !combDatapath(drv) || live[drv] {
			continue
		}
		live[drv] = true
		for _, pc := range drv.Conns() {
			pin, in := pc.Pin, pc.Net
			if dir, ok := pinDirOf(drv, pin); ok && dir == netlist.In {
				observe(in)
			}
		}
	}
	for _, in := range m.Insts {
		if combDatapath(in) && !live[in] {
			r.addf(RuleCone, Warning, m.Name, in.Name, "",
				"gate drives no port, register, or control input (dead logic cone)")
		}
	}
}

// checkNameClash warns about distinct identifiers that map to the same
// plain name under the escaped-name simplification of §3.2.1: backend tools
// that mangle hierarchy separators the same way would merge or rename them.
func (r *Report) checkNameClash(m *netlist.Module) {
	report := func(kind string, names map[string][]string) {
		var keys []string
		for k, group := range names {
			if len(group) > 1 {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			group := names[k]
			sort.Strings(group)
			f := Finding{Rule: RuleName, Severity: Warning, Module: m.Name,
				Msg: fmt.Sprintf("%d %ss simplify to %q: %s", len(group), kind, k, strings.Join(group, ", "))}
			if kind == "net" {
				f.Net = group[0]
			} else {
				f.Inst = group[0]
			}
			r.add(f)
		}
	}
	nets := map[string][]string{}
	for _, n := range m.Nets {
		nets[core.SimpleName(n.Name)] = append(nets[core.SimpleName(n.Name)], n.Name)
	}
	report("net", nets)
	insts := map[string][]string{}
	for _, in := range m.Insts {
		insts[core.SimpleName(in.Name)] = append(insts[core.SimpleName(in.Name)], in.Name)
	}
	report("instance", insts)
}
