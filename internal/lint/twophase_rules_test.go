package lint_test

import (
	"context"
	"testing"

	"desync/internal/core"
	"desync/internal/ctrlnet"
	"desync/internal/designs"
	"desync/internal/lint"
	"desync/internal/netlist"
	"desync/internal/sdc"
	"desync/internal/twophase"
)

// tpDesign converts a generated design with the twophase backend and
// returns it with the flow result.
func tpDesign(t *testing.T, spec string) (*netlist.Design, *core.Result) {
	t.Helper()
	d, err := designs.ParseSpec(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Convert(context.Background(), d, core.Options{
		Backend:      core.BackendTwoPhase,
		ManualGroups: designs.PreGrouped(spec),
	})
	if err != nil {
		t.Fatalf("Convert(%s, twophase): %v", spec, err)
	}
	return d, res
}

func tpErrors(t *testing.T, d *netlist.Design, cons *sdc.Constraints, rule string) []lint.Finding {
	t.Helper()
	rep := lint.Check(d.Top, lint.Options{TwoPhase: true, Constraints: cons})
	return rep.ByRule(rule)
}

func TestTwoPhaseCleanDesign(t *testing.T) {
	for _, spec := range []string{"fir", "pipeline:depth=3,width=8,regions=4"} {
		d, res := tpDesign(t, spec)
		rep := lint.Check(d.Top, lint.Options{TwoPhase: true, Constraints: res.Constraints})
		if n := rep.Errors(); n > 0 {
			t.Errorf("%s: clean two-phase design has %d lint errors, first: %s",
				spec, n, rep.Findings[0])
		}
	}
}

func TestTwoPhaseNoGenerator(t *testing.T) {
	// A desynchronized design checked as two-phase must fail loudly.
	d, err := designs.ParseSpec("fir", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Convert(context.Background(), d, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if got := tpErrors(t, d, nil, lint.RuleTPGen); len(got) == 0 {
		t.Errorf("TP-GEN silent on a design with no generator")
	}
}

func TestTwoPhaseCutRing(t *testing.T) {
	d, res := tpDesign(t, "fir")
	src := d.Top.Inst(ctrlnet.TPSrcName)
	d.Top.Disconnect(src, "B")
	if got := tpErrors(t, d, res.Constraints, lint.RuleTPGen); len(got) == 0 {
		t.Errorf("TP-GEN silent on a cut ring")
	}
}

func TestTwoPhaseSharedPhase(t *testing.T) {
	d, res := tpDesign(t, "fir")
	// Re-rooting a region's slave distribution onto phi1 puts every
	// master/slave pair of that region on one phase.
	g := res.BackendResult.(*twophase.Result).Regions[0]
	tps := d.Top.Inst(ctrlnet.TPDistName(g, false))
	phi1 := d.Top.Inst(ctrlnet.TPPhase1Name).Conn("Z")
	d.Top.Disconnect(tps, "A")
	d.Top.MustConnect(tps, "A", phi1)
	if got := tpErrors(t, d, res.Constraints, lint.RuleTPPhase); len(got) == 0 {
		t.Errorf("TP-PHASE silent on master/slave pairs sharing a phase")
	}
}

func TestTwoPhaseLeftoverFF(t *testing.T) {
	d, res := tpDesign(t, "fir")
	ff := d.Top.AddInst("straggler", d.Lib.MustCell("DFFQX1"))
	for _, p := range []string{"D", "CK"} {
		d.Top.MustConnect(ff, p, d.Top.AddNet("straggler/"+p))
	}
	d.Top.MustConnect(ff, "Q", d.Top.AddNet("straggler/Q"))
	if got := tpErrors(t, d, res.Constraints, lint.RuleTPFF); len(got) == 0 {
		t.Errorf("TP-FF silent on a surviving flip-flop")
	}
}

func TestTwoPhaseOverlapAndSDC(t *testing.T) {
	d, res := tpDesign(t, "fir")

	// Overlapping waveforms must trip TP-OVERLAP.
	bad := *res.Constraints
	bad.Clocks = append([]sdc.Clock(nil), res.Constraints.Clocks...)
	bad.Clocks[0].Waveform[1] = bad.Clocks[1].Waveform[0] + 0.1
	if got := tpErrors(t, d, &bad, lint.RuleTPOverlap); len(got) == 0 {
		t.Errorf("TP-OVERLAP silent on overlapping waveforms")
	}

	// A dropped loop-breaking arc must trip TP-SDC.
	cut := *res.Constraints
	cut.Disabled = nil
	if got := tpErrors(t, d, &cut, lint.RuleTPSDC); len(got) == 0 {
		t.Errorf("TP-SDC silent on missing loop-breaking constraints")
	}

	// Nil constraints downgrade both cross-checks to advisory notes.
	rep := lint.Check(d.Top, lint.Options{TwoPhase: true})
	if n := rep.Errors(); n > 0 {
		t.Errorf("nil-constraints check has %d errors, first: %s", n, rep.Findings[0])
	}
}
