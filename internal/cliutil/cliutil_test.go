package cliutil

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

func newFS() *flag.FlagSet {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestParallelismVar(t *testing.T) {
	fs := newFS()
	var j int
	ParallelismVar(fs, &j)
	if err := fs.Parse([]string{"-j", "4"}); err != nil {
		t.Fatal(err)
	}
	if j != 4 {
		t.Fatalf("-j 4 parsed as %d", j)
	}

	fs = newFS()
	ParallelismVar(fs, &j)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if j != 0 {
		t.Fatalf("default -j = %d, want 0 (GOMAXPROCS)", j)
	}
}

func TestSeedVarKeepsNameAndDefault(t *testing.T) {
	fs := newFS()
	var seed int64
	SeedVar(fs, &seed, "equiv-seed", 1, "PRNG seed for -equiv-xval traces")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if seed != 1 {
		t.Fatalf("default seed = %d, want 1", seed)
	}
	f := fs.Lookup("equiv-seed")
	if f == nil {
		t.Fatal("flag not registered under its historical name")
	}
	if !strings.Contains(f.Usage, "reproduce") {
		t.Fatalf("usage %q lacks the reproducibility suffix", f.Usage)
	}
	if err := fs.Parse([]string{"-equiv-seed", "77"}); err != nil {
		t.Fatal(err)
	}
	if seed != 77 {
		t.Fatalf("parsed seed = %d, want 77", seed)
	}
}

func TestRunDrainedCleanRun(t *testing.T) {
	interrupted, err := RunDrained(func(ctx context.Context) error { return nil })
	if err != nil || interrupted {
		t.Fatalf("clean run: interrupted=%v err=%v", interrupted, err)
	}
}

func TestRunDrainedOrdinaryFailure(t *testing.T) {
	boom := errors.New("boom")
	interrupted, err := RunDrained(func(ctx context.Context) error { return boom })
	if !errors.Is(err, boom) || interrupted {
		t.Fatalf("ordinary failure misclassified: interrupted=%v err=%v", interrupted, err)
	}
}

// TestRunDrainedSignalInterruption sends the process a real SIGTERM while fn
// is waiting on the drained context, the exact shape of a batch scheduler
// reclaiming the node mid-run.
func TestRunDrainedSignalInterruption(t *testing.T) {
	interrupted, err := RunDrained(func(ctx context.Context) error {
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			return fmt.Errorf("kill: %w", err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(10 * time.Second):
			return errors.New("SIGTERM never canceled the drained context")
		}
	})
	if !interrupted {
		t.Fatalf("SIGTERM drain not classified as interruption: err=%v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled out of a drained run, got %v", err)
	}
}

// TestRunDrainedWrappedCancellation: tools wrap the cancellation on the way
// out (flow errors, journal hints); classification must survive wrapping.
func TestRunDrainedWrappedCancellation(t *testing.T) {
	interrupted, err := RunDrained(func(ctx context.Context) error {
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			return fmt.Errorf("kill: %w", err)
		}
		<-ctx.Done()
		return fmt.Errorf("stage size: %w", ctx.Err())
	})
	if !interrupted || err == nil {
		t.Fatalf("wrapped cancellation misclassified: interrupted=%v err=%v", interrupted, err)
	}
}

func TestContextCancel(t *testing.T) {
	ctx, cancel := Context()
	if err := ctx.Err(); err != nil {
		t.Fatalf("fresh context already dead: %v", err)
	}
	cancel()
	<-ctx.Done()
}
