package main

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// CLI half of the golden byte-identity suite (the drserve half lives in
// internal/flowserv): the default-backend netlist and SDC the tool writes
// for the generated case studies are pinned by digest across driver
// refactors. The CLI path differs from the server's — degradation loop,
// stage-check lint wiring, no derived period — so both are pinned.
var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden_digests.txt from the current tool output")

const goldenFile = "testdata/golden_digests.txt"

var goldenCases = []struct {
	name string
	o    runOpts
}{
	{"dlx", runOpts{gen: "dlx", libVariant: "HS", period: 4.65, margin: 1.15}},
	{"fir", runOpts{gen: "fir", libVariant: "HS", period: 6.0, margin: 1.15}},
	{"pipeline", runOpts{gen: "pipeline:depth=4,width=8,regions=6", libVariant: "HS", margin: 1.15}},
}

func TestGoldenCLIArtifactsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("golden suite runs the full CLI flow on three designs")
	}
	got := map[string]string{}
	for _, tc := range goldenCases {
		dir := t.TempDir()
		o := tc.o
		o.out = filepath.Join(dir, "out.v")
		o.sdcOut = filepath.Join(dir, "out.sdc")
		if err := run(context.Background(), o); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for art, path := range map[string]string{"netlist.v": o.out, "constraints.sdc": o.sdcOut} {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			sum := sha256.Sum256(b)
			got[tc.name+" "+art] = hex.EncodeToString(sum[:])
		}
	}

	if *updateGolden {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		b.WriteString("# sha256 digests of default-backend drdesync outputs. Regenerate with:\n")
		b.WriteString("#   go test ./cmd/drdesync/ -run TestGoldenCLIArtifactsByteIdentical -update-golden\n")
		for _, k := range keys {
			fmt.Fprintf(&b, "%s %s\n", k, got[k])
		}
		if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d digests to %s", len(got), goldenFile)
		return
	}

	f, err := os.Open(goldenFile)
	if err != nil {
		t.Fatalf("no golden digest table (%v); run with -update-golden to create it", err)
	}
	defer f.Close()
	want := map[string]string{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Fields(line)
		if len(parts) != 3 {
			t.Fatalf("bad golden line %q", line)
		}
		want[parts[0]+" "+parts[1]] = parts[2]
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for k, wd := range want {
		if got[k] != wd {
			t.Errorf("%s: digest %s, golden %s — default-backend output changed", k, got[k], wd)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: not in the golden table; run -update-golden", k)
		}
	}
}
