package verilog

import (
	"strings"
	"testing"

	"desync/internal/netlist"
	"desync/internal/stdcells"
)

func lib() *netlist.Library { return stdcells.New(stdcells.HighSpeed) }

func TestReadSimple(t *testing.T) {
	src := `
// a tiny post-synthesis netlist
module top (a, b, z);
  input a, b;
  output z;
  wire n1;
  NAND2X1 u1 (.A(a), .B(b), .Z(n1));
  INVX1 u2 (.A(n1), .Z(z));
endmodule
`
	d, err := Read(src, lib(), "")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "top" || len(d.Top.Insts) != 2 {
		t.Fatalf("bad design: %s, %d insts", d.Name, len(d.Top.Insts))
	}
	if errs := d.Top.Check(); len(errs) != 0 {
		t.Fatalf("check: %v", errs)
	}
	u1 := d.Top.Inst("u1")
	if u1.Cell.Name != "NAND2X1" || u1.Conn("Z").Name != "n1" {
		t.Fatal("instance u1 misconnected")
	}
	if d.Top.Net("z").Driver.Inst != d.Top.Inst("u2") {
		t.Fatal("z not driven by u2")
	}
}

func TestReadBusesAndConstants(t *testing.T) {
	src := `
module top (d, q, ck);
  input [3:0] d;
  output [3:0] q;
  input ck;
  DFFQX1 r0 (.D(d[0]), .CK(ck), .Q(q[0]), .QN());
  DFFQX1 r1 (.D(d[1]), .CK(ck), .Q(q[1]), .QN());
  DFFQX1 r2 (.D(1'b0), .CK(ck), .Q(q[2]), .QN());
  DFFQX1 r3 (.D(1'b1), .CK(ck), .Q(q[3]), .QN());
endmodule
`
	d, err := Read(src, lib(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Top.Ports) != 9 { // 4+4+1 bit-blasted
		t.Fatalf("got %d ports", len(d.Top.Ports))
	}
	if d.Top.Net("d[0]") == nil || d.Top.Net("q[3]") == nil {
		t.Fatal("bus bits not blasted")
	}
	// Constants drive via tie cells.
	r2 := d.Top.Inst("r2")
	tieNet := r2.Conn("D")
	if tieNet.Driver.Inst == nil || tieNet.Driver.Inst.Cell.Name != "TIE0" {
		t.Fatal("1'b0 not driven by TIE0")
	}
	r3 := d.Top.Inst("r3")
	if r3.Conn("D").Driver.Inst.Cell.Name != "TIE1" {
		t.Fatal("1'b1 not driven by TIE1")
	}
}

func TestReadAssignAlias(t *testing.T) {
	src := `
module top (a, z, y);
  input a;
  output z, y;
  wire n1;
  INVX1 u1 (.A(a), .Z(n1));
  assign z = n1;
  assign y = a;
endmodule
`
	d, err := Read(src, lib(), "")
	if err != nil {
		t.Fatal(err)
	}
	pz := d.Top.Port("z")
	if pz.Net.Name != "n1" {
		t.Fatalf("z bound to %s, want n1 (assign replaced)", pz.Net.Name)
	}
	py := d.Top.Port("y")
	if py.Net.Name != "a" {
		t.Fatalf("y bound to %s, want a", py.Net.Name)
	}
}

func TestReadEscapedNames(t *testing.T) {
	src := "module top (a, z);\n input a;\n output z;\n" +
		" INVX1 \\u1/inv (.A(a), .Z(z));\nendmodule\n"
	d, err := Read(src, lib(), "")
	if err != nil {
		t.Fatal(err)
	}
	if d.Top.Inst("u1/inv") == nil {
		t.Fatal("escaped instance name lost")
	}
}

func TestReadPositional(t *testing.T) {
	src := `
module top (a, b, z);
  input a, b;
  output z;
  NAND2X1 u1 (a, b, z);
endmodule
`
	d, err := Read(src, lib(), "")
	if err != nil {
		t.Fatal(err)
	}
	u1 := d.Top.Inst("u1")
	if u1.Conn("A").Name != "a" || u1.Conn("B").Name != "b" || u1.Conn("Z").Name != "z" {
		t.Fatal("positional connection order wrong")
	}
}

func TestReadHierarchy(t *testing.T) {
	src := `
module leaf (i, o);
  input i;
  output o;
  INVX1 g (.A(i), .Z(o));
endmodule

module top (a, z);
  input a;
  output z;
  wire m;
  leaf l1 (.i(a), .o(m));
  leaf l2 (.i(m), .o(z));
endmodule
`
	d, err := Read(src, lib(), "")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "top" {
		t.Fatalf("auto top = %s", d.Name)
	}
	if len(d.Top.Insts) != 2 || d.Top.Inst("l1").Sub == nil {
		t.Fatal("submodule instances wrong")
	}
	if err := d.Flatten(true); err != nil {
		t.Fatal(err)
	}
	if len(d.Top.Insts) != 2 || d.Top.Inst("l1/g") == nil {
		t.Fatal("flatten failed")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",
		"module top (a); input a;", // no endmodule
		"module top (a); input a; BOGUS u (.A(a)); endmodule",        // unknown cell
		"module top (a); NAND2X1 u (.A(a), .B(a), .Z(a)); endmodule", // port без direction -> a has no dir decl
		"module top (); wire w; NAND2X1 u (.NOPE(w)); endmodule",
		"module top (); wire w; INVX1 u (w); endmodule", // positional count mismatch
	}
	for _, src := range cases {
		if _, err := Read(src, lib(), ""); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

// Duplicate and conflicting names must be rejected at link time with a
// message naming the offender — the netlist package would otherwise panic
// deep inside AddInst, long after the offending source line is known.
func TestReadDuplicateNames(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{
			"duplicate instance",
			"module top (a, z); input a; output z; wire w;\n" +
				"INVX1 u1 (.A(a), .Z(w));\nINVX1 u1 (.A(w), .Z(z));\nendmodule",
			`duplicate instance "u1"`,
		},
		{
			"scalar redeclared as bus",
			"module top (a); input a; wire w; wire [3:0] w; endmodule",
			"redeclared as a bus",
		},
		{
			"bus redeclared as scalar",
			"module top (a); input a; wire [3:0] w; wire w; endmodule",
			"redeclared as a scalar",
		},
		{
			"bus redeclared with another range",
			"module top (a); input a; wire [3:0] w; wire [7:0] w; endmodule",
			"redeclared as [7:0]",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(tc.src, lib(), "")
			if err == nil {
				t.Fatalf("expected error for %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// Benign redeclaration (same shape, port-then-wire) stays legal.
func TestReadRedeclareSameShape(t *testing.T) {
	src := `
module top (a, q);
  input a;
  output [1:0] q;
  wire [1:0] q;
  wire a;
  INVX1 u0 (.A(a), .Z(q[0]));
  INVX1 u1 (.A(a), .Z(q[1]));
endmodule
`
	if _, err := Read(src, lib(), ""); err != nil {
		t.Fatal(err)
	}
}

func TestReadTopSelection(t *testing.T) {
	src := `
module m1 (a); input a; endmodule
module m2 (a); input a; endmodule
`
	if _, err := Read(src, lib(), ""); err == nil {
		t.Fatal("expected ambiguity error")
	}
	d, err := Read(src, lib(), "m2")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "m2" {
		t.Fatal("explicit top ignored")
	}
}

// Round trip: write then read must preserve structure and names.
func TestRoundTrip(t *testing.T) {
	src := `
module top (din, dout, ck, en);
  input [7:0] din;
  output [7:0] dout;
  input ck, en;
  wire [7:0] n;
  MUX2X1 m0 (.A(din[0]), .B(dout[0]), .S(en), .Z(n[0]));
  MUX2X1 m1 (.A(din[1]), .B(dout[1]), .S(en), .Z(n[1]));
  DFFQX1 r0 (.D(n[0]), .CK(ck), .Q(dout[0]), .QN());
  DFFQX1 r1 (.D(n[1]), .CK(ck), .Q(dout[1]), .QN());
  BUFX1 b2 (.A(din[2]), .Z(dout[2]));
  BUFX1 b3 (.A(din[3]), .Z(dout[3]));
  BUFX1 b4 (.A(din[4]), .Z(dout[4]));
  BUFX1 b5 (.A(din[5]), .Z(dout[5]));
  BUFX1 b6 (.A(din[6]), .Z(dout[6]));
  BUFX1 b7 (.A(din[7]), .Z(dout[7]));
  INVX1 iu (.A(n[1]), .Z(n[2]));
  BUFX1 sink3 (.A(n[2]), .Z(n[3]));
  BUFX1 sink4 (.A(din[2]), .Z(n[4]));
  BUFX1 sink5 (.A(n[4]), .Z(n[5]));
  BUFX1 sink6 (.A(n[5]), .Z(n[6]));
  BUFX1 sink7 (.A(n[6]), .Z(n[7]));
endmodule
`
	d1, err := Read(src, lib(), "")
	if err != nil {
		t.Fatal(err)
	}
	out1 := Write(d1)
	d2, err := Read(out1, lib(), "")
	if err != nil {
		t.Fatalf("re-read failed: %v\n%s", err, out1)
	}
	if len(d2.Top.Insts) != len(d1.Top.Insts) {
		t.Fatalf("instance count changed: %d -> %d", len(d1.Top.Insts), len(d2.Top.Insts))
	}
	if len(d2.Top.Nets) != len(d1.Top.Nets) {
		t.Fatalf("net count changed: %d -> %d", len(d1.Top.Nets), len(d2.Top.Nets))
	}
	for _, in1 := range d1.Top.Insts {
		in2 := d2.Top.Inst(in1.Name)
		if in2 == nil {
			t.Fatalf("instance %s lost", in1.Name)
		}
		for _, pc := range in1.Conns() {
			pin, n1 := pc.Pin, pc.Net
			if in2.Conn(pin) == nil || in2.Conn(pin).Name != n1.Name {
				t.Fatalf("%s/%s: %s vs %v", in1.Name, pin, n1.Name, in2.Conn(pin))
			}
		}
	}
	// Second write must be identical (determinism).
	if out2 := Write(d2); out1 != out2 {
		t.Fatal("write not deterministic across round trip")
	}
	// Bus reconstruction: din must be declared as a bus, not 8 escaped nets.
	if !strings.Contains(out1, "input [7:0] din;") {
		t.Fatalf("bus not reconstructed:\n%s", out1)
	}
}

func TestWriteEscapesNames(t *testing.T) {
	l := lib()
	d := netlist.NewDesign("top", l)
	m := d.Top
	m.AddPort("a", netlist.In)
	m.AddPort("z", netlist.Out)
	in := m.AddInst("g/with.dots", l.MustCell("INVX1"))
	m.MustConnect(in, "A", m.Net("a"))
	m.MustConnect(in, "Z", m.Net("z"))
	out := Write(d)
	if !strings.Contains(out, "\\g/with.dots ") {
		t.Fatalf("name not escaped:\n%s", out)
	}
	d2, err := Read(out, l, "")
	if err != nil {
		t.Fatal(err)
	}
	if d2.Top.Inst("g/with.dots") == nil {
		t.Fatal("escaped name did not round-trip")
	}
}

func TestWriteAliasedOutputPort(t *testing.T) {
	src := `
module top (a, z);
  input a;
  output z;
  wire n1;
  INVX1 u1 (.A(a), .Z(n1));
  assign z = n1;
endmodule
`
	l := lib()
	d, err := Read(src, l, "")
	if err != nil {
		t.Fatal(err)
	}
	out := Write(d)
	d2, err := Read(out, l, "")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if d2.Top.Port("z").Net.Name != "n1" {
		t.Fatalf("aliased port lost: bound to %s\n%s", d2.Top.Port("z").Net.Name, out)
	}
}

func TestConcatenationConnection(t *testing.T) {
	src := `
module sub (d, q);
  input [1:0] d;
  output [1:0] q;
  BUFX1 b0 (.A(d[0]), .Z(q[0]));
  BUFX1 b1 (.A(d[1]), .Z(q[1]));
endmodule
module top (x0, x1, y0, y1);
  input x0, x1;
  output y0, y1;
  sub s (.d({x1, x0}), .q({y1, y0}));
endmodule
`
	d, err := Read(src, lib(), "top")
	if err != nil {
		t.Fatal(err)
	}
	s := d.Top.Inst("s")
	// d is [1:0] so MSB-first expansion maps d[1]<-x1, d[0]<-x0.
	if s.Conn("d[1]").Name != "x1" || s.Conn("d[0]").Name != "x0" {
		t.Fatalf("concat mapping wrong: %v", s.Conns())
	}
}
