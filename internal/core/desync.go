package core

import (
	"context"
	"fmt"
	"sort"

	"desync/internal/ctrlnet"
	"desync/internal/netlist"
	"desync/internal/sdc"
	"desync/internal/sta"
)

// Options configures a desynchronization run (the tool's command line,
// §3.2).
type Options struct {
	// Period is the original clock period in ns, used for the derived
	// latch-enable clock constraints (Fig 4.2) and the request-path max
	// delays.
	Period float64
	// Margin scales the matched delay elements over the measured region
	// budget; defaults to 1.15.
	Margin float64
	// MuxTaps builds 8-tap multiplexed delay elements selected by new
	// delsel[2:0] ports (the calibration knob of Fig 5.3).
	MuxTaps bool
	// TapScales overrides DefaultTapScales when MuxTaps is set.
	TapScales []float64
	// FalsePaths names nets the grouping and dependency analyses ignore
	// (§3.2.2 "False Paths").
	FalsePaths []string
	// ManualGroups keeps the Group fields already present on the instances
	// (e.g. from a two-level hierarchy import) instead of running the
	// automatic grouping.
	ManualGroups bool
	// SkipClean disables buffer/inverter-pair removal.
	SkipClean bool
	// CompletionDetection replaces delay elements with dual-rail completion
	// networks (§2.4.4): true data-dependent, average-case timing at ~2x
	// combinational area.
	CompletionDetection bool
	// CompletionMargin adds slow-rise levels to each DONE (default 2).
	CompletionMargin int
	// StageCheck, when non-nil, runs after each stage's Validate boundary
	// with the stage name and whether the snapshot is mid-flow (undriven
	// latch-enable nets are legal). cmd/drdesync hooks the static lint
	// engine here so every stage is gated, not just import and export; an
	// error aborts the flow as a FlowError of that stage.
	StageCheck func(stage string, midFlow bool) error
	// Progress, when non-nil, is called with each Stage* constant as the
	// flow enters that stage — the same seams FlowError.Stage reports, in
	// Stages order (minus StageClean under SkipClean). The job server
	// streams these to clients; the callback runs on the flow's goroutine,
	// so it must be fast and must not call back into the design.
	Progress func(stage string)
	// Parallelism bounds the workers of the flow's parallel kernels
	// (per-region STA extraction during delay-element sizing); 0 means
	// GOMAXPROCS. The flow's output is identical at any value.
	Parallelism int
}

// Result reports everything a drdesync run produced.
type Result struct {
	CleanedCells int
	Grouping     GroupingResult
	Substitution *SubstituteResult
	DDG          *DDG
	RegionDelays map[int]*sta.RegionDelay
	DelayLevels  map[int]int
	Insert       *InsertResult
	Constraints  *sdc.Constraints
	// UnderMargin lists regions whose sized delay element does not cover
	// the measured launch-to-capture budget (only possible when the margin
	// is below 1.0). The flow still completes — the ablation studies sweep
	// such margins deliberately — but cmd/drdesync warns and can auto-bump.
	UnderMargin []int
	// Network is the control-network IR derived from the exported netlist
	// (ctrlnet.Derive); downstream consumers — lint's DS-* rules, the equiv
	// model, fault campaigns — reuse it instead of re-deriving their own.
	Network *ctrlnet.Network
	// CtrlDiff lists disagreements between the insert stage's Claim and
	// Network. Always empty on a successful flow: any mismatch is a flow
	// error at the export stage.
	CtrlDiff []ctrlnet.Mismatch
}

// Desynchronize converts the synchronous design in place: flatten, clean,
// group, substitute flip-flops, build the dependency graph, size the
// matched delay elements and insert the controller network. The datapath is
// untouched (§2.1); the clock network is gone; the design gains a
// rst_desync input (and delsel[2:0] when MuxTaps is set), plus environment
// handshake ports for boundary regions.
//
// Cancellation is observed at every stage boundary (and inside the sized
// kernels); a canceled flow aborts as a FlowError of the stage it was
// entering, leaving the design in that stage's state.
func Desynchronize(ctx context.Context, d *netlist.Design, opts Options) (*Result, error) {
	if opts.Margin == 0 {
		opts.Margin = 1.15
	}
	res := &Result{}
	name := d.Name
	progress := opts.Progress
	if progress == nil {
		progress = func(string) {}
	}

	// validate runs the netlist invariant checker after each stage so a
	// stage that corrupts the structure is caught at its own boundary; it
	// is also where a cancellation between stages surfaces.
	validate := func(stage string, midFlow bool) error {
		if err := ctx.Err(); err != nil {
			return flowErr(stage, name, "canceled", err)
		}
		errs := d.Top.Validate(netlist.ValidateOptions{AllowUndriven: midFlow})
		if len(errs) > 0 {
			return flowErr(stage, name, "post-stage validation",
				fmt.Errorf("%v (and %d more)", errs[0], len(errs)-1))
		}
		if opts.StageCheck != nil {
			if err := opts.StageCheck(stage, midFlow); err != nil {
				return flowErr(stage, name, "post-stage lint", err)
			}
		}
		return nil
	}

	if err := ctx.Err(); err != nil {
		return nil, flowErr(StageImport, name, "canceled", err)
	}
	progress(StageImport)

	// Design import finalization: the paper's tool works on a flat view; a
	// two-level netlist flattens with hierarchy-derived groups (§3.2.2).
	if err := d.Flatten(opts.ManualGroups); err != nil {
		return nil, flowErr(StageImport, name, "flatten", err)
	}
	if missing := MarkFalsePaths(d.Top, opts.FalsePaths); len(missing) > 0 {
		return nil, flowErr(StageImport, name, "",
			fmt.Errorf("unknown false-path nets %v", missing))
	}

	// Single-clock designs only (§4.1); multiple clock domains are the
	// paper's future work, and silently merging them would fabricate
	// cross-domain synchronization that the original never had.
	clocks := map[*netlist.Net]bool{}
	for _, in := range d.Top.Insts {
		if in.Cell == nil || in.Cell.Kind != netlist.KindFF {
			continue
		}
		if ck := in.Conn(in.Cell.Seq.ClockPin); ck != nil {
			clocks[ck] = true
		}
	}
	if len(clocks) > 1 {
		var names []string
		for n := range clocks {
			names = append(names, n.Name)
		}
		sort.Strings(names)
		return nil, flowErr(StageImport, name, "",
			fmt.Errorf("%d clock domains (%v); the flow supports single-clock designs (§4.1)",
				len(names), names))
	}
	if err := validate(StageImport, true); err != nil {
		return nil, err
	}

	if !opts.SkipClean {
		progress(StageClean)
		res.CleanedCells = CleanLogic(d.Top)
		if err := validate(StageClean, true); err != nil {
			return nil, err
		}
	}
	progress(StageGroup)
	if opts.ManualGroups {
		for _, in := range d.Top.Insts {
			if in.Group < 0 {
				in.Group = 0
			}
		}
		res.Grouping.Groups = compactGroups(d.Top)
	} else {
		res.Grouping = AutoGroup(d.Top)
	}
	if res.Grouping.Groups == 0 {
		return nil, flowErr(StageGroup, name, "", ErrNoRegions)
	}

	progress(StageSubstitute)
	sub, err := SubstituteFlipFlops(d)
	if err != nil {
		return nil, flowErr(StageSubstitute, name, "", err)
	}
	res.Substitution = sub
	if err := validate(StageSubstitute, true); err != nil {
		return nil, err
	}

	progress(StageSize)
	res.DDG = BuildDDG(d.Top)

	levels, rds, err := SizeDelayElements(ctx, d, res.DDG, opts.Margin, opts.Parallelism)
	if err != nil {
		return nil, flowErr(StageSize, name, "", err)
	}
	res.DelayLevels = levels
	res.RegionDelays = rds
	res.UnderMargin = underMarginRegions(d.Lib, res.DDG, levels, rds)

	progress(StageInsert)
	cm := opts.CompletionMargin
	if cm == 0 {
		cm = 2
	}
	ins, err := InsertControlNetwork(d, res.DDG, sub.Enables, levels, InsertOptions{
		Margin:              opts.Margin,
		MuxTaps:             opts.MuxTaps,
		TapScales:           opts.TapScales,
		Period:              opts.Period,
		CompletionDetection: opts.CompletionDetection,
		CompletionMargin:    cm,
	})
	if err != nil {
		return nil, flowErr(StageInsert, name, "control network", err)
	}
	res.Insert = ins
	res.Constraints = ins.Constraints

	progress(StageExport)
	if errs := d.Top.Check(); len(errs) > 0 {
		return nil, flowErr(StageExport, name, "netlist checks",
			fmt.Errorf("%v (and %d more)", errs[0], len(errs)-1))
	}

	// Cross-check what the insert stage claims it built against what the
	// exported netlist structurally contains. The derivation is independent
	// of flow state (names and pin connectivity only), so a disagreement
	// means a stage corrupted the control network after insertion — a class
	// of bug per-consumer re-derivation used to absorb silently.
	res.Network = ctrlnet.Derive(d.Top)
	res.CtrlDiff = ctrlnet.Diff(ins.Claim, res.Network)
	if len(res.CtrlDiff) > 0 {
		return nil, flowErr(StageExport, name, "control-network cross-check",
			fmt.Errorf("netlist disagrees with the insert stage's claim: %v (and %d more)",
				res.CtrlDiff[0], len(res.CtrlDiff)-1))
	}

	if err := validate(StageExport, false); err != nil {
		return nil, err
	}
	return res, nil
}

// underMarginRegions flags regions whose sized element delay falls short of
// the measured budget: the matched element no longer matches.
func underMarginRegions(lib *netlist.Library, ddg *DDG, levels map[int]int, rds map[int]*sta.RegionDelay) []int {
	arc := lib.MustCell("AND2X1").Arc("A", "Z")
	if arc == nil {
		return nil
	}
	level := arc.Rise.At(netlist.Worst)
	var under []int
	for _, g := range ddg.Nodes {
		rd := rds[g]
		if rd == nil {
			continue
		}
		if float64(levels[g])*level < rd.Budget() {
			under = append(under, g)
		}
	}
	sort.Ints(under)
	return under
}

// DisabledArcMap converts the generated loop-breaking constraints into the
// STA option format.
func (r *Result) DisabledArcMap() map[sta.ArcKey]bool {
	out := map[sta.ArcKey]bool{}
	for _, da := range r.Constraints.Disabled {
		out[sta.ArcKey{Inst: da.Inst, From: da.From, To: da.To}] = true
	}
	return out
}

// SimpleName rewrites one escaped/hierarchical identifier into a plain one
// (§3.2.1 "escaped names are substituted by simple ones"), preserving the
// bus-bit [n] suffix so the bus heuristic keeps working. Identifiers that
// are already plain come back unchanged. The lint engine uses the same
// mapping to warn about names that would collide after simplification.
func SimpleName(s string) string {
	base, idx, isBus := netlist.BusBase(s)
	body := s
	if isBus {
		body = base
	}
	out := make([]byte, 0, len(body))
	changed := false
	for i := 0; i < len(body); i++ {
		c := body[i]
		ok := c == '_' || c == '$' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			(i > 0 && c >= '0' && c <= '9')
		if ok {
			out = append(out, c)
		} else {
			out = append(out, '_')
			changed = true
		}
	}
	if !changed {
		return s
	}
	if isBus {
		return fmt.Sprintf("%s[%d]", out, idx)
	}
	return string(out)
}

// SimplifyNames applies SimpleName to every net of the module, skipping
// renames that would collide. Returns the number of renamed nets.
func SimplifyNames(m *netlist.Module) int {
	renamed := 0
	simple := SimpleName
	taken := map[string]bool{}
	for _, n := range m.Nets {
		taken[n.Name] = true
	}
	for _, n := range m.Nets {
		ns := simple(n.Name)
		if ns == n.Name || taken[ns] {
			continue
		}
		delete(taken, n.Name)
		taken[ns] = true
		if err := m.RenameNet(n, ns); err != nil {
			continue
		}
		renamed++
	}
	return renamed
}
