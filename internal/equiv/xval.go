package equiv

import (
	"context"
	"fmt"
	"sort"

	"desync/internal/faults"
	"desync/internal/handshake"
	"desync/internal/logic"
	"desync/internal/netlist"
	"desync/internal/par"
	"desync/internal/sim"
)

// XValConfig tunes the model-vs-simulation cross-validation.
type XValConfig struct {
	Traces  int     // randomized runs; 0 disables cross-validation
	Seed    int64   // PRNG seed; trace k uses Seed+k; 0 means 0 (recorded)
	Spread  float64 // control-gate delay jitter (default 0.35)
	Horizon float64 // run length per trace in ns (default 60)
	Corner  netlist.Corner
	// Parallelism bounds the worker count for concurrent traces; 0 means
	// GOMAXPROCS. The report is identical at any value: traces draw their
	// delay jitter from per-trace seeds, never share simulator state, and
	// the merge keeps the lowest-index divergence.
	Parallelism int
}

// XValResult reports the cross-validation outcome.
type XValResult struct {
	Seed       int64       `json:"seed"`
	Traces     int         `json:"traces"`
	Events     int         `json:"events"` // visible transitions accepted by the model
	Divergence *Divergence `json:"divergence,omitempty"`
}

// Divergence is a simulated transition the model cannot fire from any
// marking consistent with the observed prefix — a counterexample to the
// model/netlist correspondence (or a real circuit hazard under the drawn
// delays).
type Divergence struct {
	TraceIndex int             `json:"trace"`
	Time       float64         `json:"time"`
	Net        string          `json:"net"`
	Value      bool            `json:"value"`
	Observed   []TraceEvent    `json:"observed"` // trailing accepted prefix
	Expected   []string        `json:"expected"` // visible events the model enables
	Marking    map[string]bool `json:"marking,omitempty"`
}

// maxClosure bounds the invisible-transition closure during acceptance.
// The closure frontier is roughly the product of the regions' concurrent
// handshake progress, so it peaks well above the reduced reachable count
// (tens of thousands of markings on the DLX) before a visible event
// collapses it again.
const maxClosure = 1 << 18

type obsEvent struct {
	t   float64
	net string
	v   logic.V
}

// CrossValidate simulates the design cfg.Traces times with seeded random
// delay jitter on the control instances (the network is speed independent,
// so the model must accept every such run), observes the property-relevant
// nets, and checks each observed trace is a firing sequence of the model
// via subset construction over the invisible transitions.
//
// Traces run concurrently (cfg.Parallelism workers): each one snapshots its
// own jittered delay factors into its simulator instead of mutating the
// shared module, and the serial merge below keeps exactly what the old
// one-trace-at-a-time loop reported — the lowest-index divergence or
// failure, with Events counting only the traces before it.
func (m *Model) CrossValidate(ctx context.Context, mod *netlist.Module, cfg XValConfig) (*XValResult, error) {
	if cfg.Spread == 0 {
		cfg.Spread = 0.35
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 60
	}
	res := &XValResult{Seed: cfg.Seed, Traces: cfg.Traces}
	type traceResult struct {
		events int
		div    *Divergence
		err    error
	}
	tasks := make([]int, cfg.Traces)
	for k := range tasks {
		tasks[k] = k
	}
	// Per-trace errors travel inside the result (not as task errors), so
	// the merge can replicate the serial loop's stop-at-first semantics;
	// only cancellation aborts the fan-out itself.
	results, err := par.Map(ctx, cfg.Parallelism, tasks, func(ctx context.Context, _ int, k int) (traceResult, error) {
		if err := ctx.Err(); err != nil {
			return traceResult{}, err
		}
		obs, err := m.simTrace(mod, cfg, cfg.Seed+int64(k))
		if err != nil {
			return traceResult{err: err}, nil
		}
		div, err := m.accept(obs, k)
		if err != nil {
			return traceResult{err: err}, nil
		}
		return traceResult{events: len(obs), div: div}, nil
	})
	if err != nil {
		return res, err
	}
	for _, r := range results {
		if r.err != nil {
			return res, r.err
		}
		if r.div != nil {
			res.Divergence = r.div
			return res, nil
		}
		res.Events += r.events
	}
	return res, nil
}

// simTrace runs one randomized simulation and returns the observed visible
// transitions after reset release.
func (m *Model) simTrace(mod *netlist.Module, cfg XValConfig, seed int64) ([]obsEvent, error) {
	factors := sim.DelayFactorMap(mod, seed, cfg.Spread, func(in *netlist.Inst) bool {
		return handshake.IsControlOrigin(in.Origin)
	})

	s, err := sim.New(mod, sim.Config{Corner: cfg.Corner, DelayFactors: factors})
	if err != nil {
		return nil, err
	}
	if err := faults.ResetStimulus(mod, 0)(s); err != nil {
		return nil, err
	}
	if err := m.driveEnvironment(s); err != nil {
		return nil, err
	}

	var obs []obsEvent
	for i := range m.sigs {
		if !m.visible(i) {
			continue
		}
		name := m.sigs[i].name
		if err := s.OnChange(name, func(t float64, v logic.V) {
			if t > 2.0 {
				obs = append(obs, obsEvent{t, name, v})
			}
		}); err != nil {
			return nil, err
		}
	}
	if err := s.Run(cfg.Horizon); err != nil {
		return nil, err
	}
	sort.SliceStable(obs, func(a, b int) bool { return obs[a].t < obs[b].t })
	return obs, nil
}

// driveEnvironment emulates an eager 4-phase environment on every
// port-driven channel the model found: requests toggle against the
// controller's acknowledge, acknowledges mirror the request-out.
func (m *Model) driveEnvironment(s *sim.Simulator) error {
	const dt = 0.3
	for i := range m.sigs {
		sg := &m.sigs[i]
		port := sg.name
		watch := sg.a
		if watch.sig < 0 {
			continue
		}
		watchNet := m.sigs[watch.sig].name
		switch sg.kind {
		case kindEnvSrc:
			if err := s.Drive(port, logic.H, 2.5); err != nil {
				return err
			}
			if err := s.OnChange(watchNet, func(t float64, v logic.V) {
				if v == logic.H {
					_ = s.Drive(port, logic.L, t+dt)
				} else if v == logic.L && t > 2.0 {
					_ = s.Drive(port, logic.H, t+dt)
				}
			}); err != nil {
				return err
			}
		case kindEnvSink:
			if err := s.OnChange(watchNet, func(t float64, v logic.V) {
				if v.Known() {
					_ = s.Drive(port, v, t+dt)
				}
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// accept checks one observed trace is a firing sequence of the model:
// maintain the set of markings reachable via invisible transitions, fire
// each observed visible event from every marking that enables it, and
// report divergence when the set empties.
func (m *Model) accept(obs []obsEvent, traceIdx int) (*Divergence, error) {
	cur := map[string]state{}
	init := m.initial()
	cur[string(init)] = init
	var err error
	if cur, err = m.closure(cur); err != nil {
		return nil, err
	}
	var accepted []TraceEvent
	for _, e := range obs {
		idx, ok := m.sigOf[e.net]
		if !ok {
			continue
		}
		if !e.v.Known() {
			return m.divergence(cur, accepted, e, traceIdx, "unknown (X) value"), nil
		}
		want := e.v.Bool()
		next := map[string]state{}
		for key, st := range cur {
			if st.bit(idx) == want || m.target(st, idx) != want {
				continue
			}
			ns, viol := m.fire(st, idx)
			if viol != nil {
				continue
			}
			next[string(ns)] = ns
			_ = key
		}
		if len(next) == 0 {
			return m.divergence(cur, accepted, e, traceIdx, ""), nil
		}
		if next, err = m.closure(next); err != nil {
			return nil, err
		}
		cur = next
		accepted = append(accepted, TraceEvent{Net: e.net, Value: want})
	}
	return nil, nil
}

// closure saturates a marking set under invisible transitions, with the
// acceptance variant of the delay discipline. Falling delay outputs keep
// absolute priority (a single AND stage is the fastest element in the
// network, so a pending withdrawal always lands first). Rising arrivals
// wait for the *invisible* gate cascades to settle — but unlike the
// explorer they do not wait on pending visible events: the simulator
// launches an arrival when its chain delay elapses, not when some other
// region's latch-enable happens to fire, so conditioning arrivals on
// global stability would reject real traces. (Fully unrestricted arrivals
// are ruled out the other way: interleaving them through the cascades
// blows the closure frontier past any usable bound.)
func (m *Model) closure(set map[string]state) (map[string]state, error) {
	queue := make([]state, 0, len(set))
	for _, st := range set {
		queue = append(queue, st)
	}
	for len(queue) > 0 {
		st := queue[0]
		queue = queue[1:]
		excited := m.excited(st)
		// The cascades' free interleavings are the breadth problem here just
		// as in the explorer, and the same persistent-singleton reduction is
		// sound for acceptance: the singleton diamond-commutes with every
		// other enabled transition, so a pending visible event stays enabled
		// along the reduced path and the set keeps every visited marking.
		if sing, _ := m.persistentSingleton(st, excited); sing >= 0 {
			excited = excited[sing : sing+1]
		} else {
			var falls, gates, rises []int
			for _, i := range excited {
				if m.sigs[i].kind == kindDelay {
					if st.bit(i) {
						falls = append(falls, i)
					} else {
						rises = append(rises, i)
					}
					continue
				}
				if !m.visible(i) {
					gates = append(gates, i)
				}
			}
			switch {
			case len(falls) > 0:
				excited = falls
			case len(gates) > 0:
				excited = gates
			default:
				excited = rises
			}
		}
		for _, i := range excited {
			if m.visible(i) {
				continue
			}
			ns, viol := m.fire(st, i)
			if viol != nil {
				continue
			}
			key := string(ns)
			if _, ok := set[key]; !ok {
				set[key] = ns
				queue = append(queue, ns)
				if len(set) > maxClosure {
					return nil, fmt.Errorf("equiv: cross-validation closure exceeded %d markings", maxClosure)
				}
			}
		}
	}
	return set, nil
}

const maxObservedTail = 48

// divergence builds the counterexample report for a rejected transition.
func (m *Model) divergence(cur map[string]state, accepted []TraceEvent, e obsEvent, traceIdx int, note string) *Divergence {
	d := &Divergence{
		TraceIndex: traceIdx, Time: e.t, Net: e.net, Value: e.v.Bool(),
	}
	if len(accepted) > maxObservedTail {
		accepted = accepted[len(accepted)-maxObservedTail:]
	}
	d.Observed = accepted
	// Deterministic sample marking: the smallest key in the current set.
	keys := make([]string, 0, len(cur))
	for k := range cur {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	expected := map[string]bool{}
	for _, k := range keys {
		st := cur[k]
		for _, i := range m.excited(st) {
			if m.visible(i) {
				expected[fmt.Sprintf("%s%s", m.sigs[i].name, edge(m.target(st, i)))] = true
			}
		}
	}
	if len(keys) > 0 {
		d.Marking, _ = m.DecodeMarking(cur[keys[0]])
	}
	for ev := range expected {
		d.Expected = append(d.Expected, ev)
	}
	sort.Strings(d.Expected)
	if note != "" {
		d.Net = e.net + " (" + note + ")"
	}
	return d
}
