package netlist

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
)

// ContentHash returns a stable hex digest of the module's canonical content:
// the module name, ports in declaration order (the interface contract), and
// nets and instances in name-sorted order with their connectivity, region
// assignment, origin and timing annotations. Two modules that export the
// same design hash identically regardless of the order nets or instances
// were created in, and nothing in the walk ranges over a map without
// sorting first — the digest is deterministic across processes.
//
// The hash covers everything the desynchronization flow's output depends
// on, so it is a sound cache key for flow results: structure (driver/sink
// connectivity), cell bindings, groups, false-path marks, SizeOnly/Origin
// flags, and the per-instance/per-net delay annotations.
func (m *Module) ContentHash() string {
	h := sha256.New()
	writeModuleContent(h, m)
	return hex.EncodeToString(h.Sum(nil))
}

// ContentHash returns the design-level digest: the library identity (name
// and variant — the same structure mapped to HS vs LL cells times
// differently), then every module of the design in name-sorted order. It is
// the netlist half of a content-addressed flow-result cache key.
func (d *Design) ContentHash() string {
	h := sha256.New()
	if d.Lib != nil {
		fmt.Fprintf(h, "lib %s %s\n", d.Lib.Name, d.Lib.Variant)
	}
	fmt.Fprintf(h, "design %s top %s\n", d.Name, d.Top.Name)
	var names []string
	for name := range d.Modules {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(h, "module %s\n", name)
		writeModuleContent(h, d.Modules[name])
	}
	// A top module outside the Modules map (hand-assembled designs) still
	// contributes its content.
	if _, ok := d.Modules[d.Top.Name]; !ok {
		writeModuleContent(h, d.Top)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// writeModuleContent streams the canonical form of one module. Every
// collection is emitted in a sorted or declaration order; map iteration
// never reaches the writer.
func writeModuleContent(w io.Writer, m *Module) {
	fmt.Fprintf(w, "name %s\n", m.Name)
	for _, p := range m.Ports {
		netName := ""
		if p.Net != nil {
			netName = p.Net.Name
		}
		fmt.Fprintf(w, "port %s %s %s\n", p.Name, p.Dir, netName)
	}

	nets := make([]*Net, len(m.Nets))
	copy(nets, m.Nets)
	sort.Slice(nets, func(i, j int) bool { return nets[i].Name < nets[j].Name })
	for _, n := range nets {
		fmt.Fprintf(w, "net %s drv %s", n.Name, n.Driver)
		sinks := make([]string, 0, len(n.Sinks))
		for _, s := range n.Sinks {
			sinks = append(sinks, s.String())
		}
		sort.Strings(sinks)
		for _, s := range sinks {
			fmt.Fprintf(w, " snk %s", s)
		}
		if n.FalsePath {
			fmt.Fprint(w, " fp")
		}
		if n.Wire != (Delay{}) {
			fmt.Fprintf(w, " wire %g %g", n.Wire.Best, n.Wire.Worst)
		}
		fmt.Fprintln(w)
	}

	insts := make([]*Inst, len(m.Insts))
	copy(insts, m.Insts)
	sort.Slice(insts, func(i, j int) bool { return insts[i].Name < insts[j].Name })
	for _, in := range insts {
		fmt.Fprintf(w, "inst %s %s g %d", in.Name, in.CellName(), in.Group)
		if in.SizeOnly {
			fmt.Fprint(w, " so")
		}
		if in.Origin != "" {
			fmt.Fprintf(w, " org %s", in.Origin)
		}
		if in.DelayFactor != 0 && in.DelayFactor != 1 {
			fmt.Fprintf(w, " df %g", in.DelayFactor)
		}
		pins := make([]string, 0, len(in.Conns))
		for pin := range in.Conns {
			pins = append(pins, pin)
		}
		sort.Strings(pins)
		for _, pin := range pins {
			if n := in.Conns[pin]; n != nil {
				fmt.Fprintf(w, " %s=%s", pin, n.Name)
			}
		}
		fmt.Fprintln(w)
	}
}
