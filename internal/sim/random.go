package sim

// Randomized-trace support: deterministic, seedable delay randomization.
// The desynchronized control network is speed independent, so its formal
// model must accept the simulator's behaviour under any assignment of gate
// delays; jittering per-instance delay factors from a seed is how the
// equiv cross-validation explores different interleavings reproducibly.

import (
	"math/rand"

	"desync/internal/netlist"
)

// JitterDelayFactors multiplies the DelayFactor of every instance accepted
// by filter (all instances when nil) by a uniform factor in
// [1-spread, 1+spread], drawn from a PRNG seeded with seed. The walk order
// is the module's instance order, so the same seed always produces the
// same factors. It returns how many instances were touched and a restore
// function that puts the original factors back.
func JitterDelayFactors(m *netlist.Module, seed int64, spread float64, filter func(*netlist.Inst) bool) (int, func()) {
	if spread < 0 {
		spread = 0
	}
	if spread > 0.9 {
		spread = 0.9
	}
	rng := rand.New(rand.NewSource(seed))
	type save struct {
		in *netlist.Inst
		f  float64
	}
	var saved []save
	for _, in := range m.Insts {
		if filter != nil && !filter(in) {
			continue
		}
		saved = append(saved, save{in, in.DelayFactor})
		f := in.DelayFactor
		if f == 0 {
			f = 1
		}
		in.DelayFactor = f * (1 + spread*(2*rng.Float64()-1))
	}
	restore := func() {
		for _, s := range saved {
			s.in.DelayFactor = s.f
		}
	}
	return len(saved), restore
}
