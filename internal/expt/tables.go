package expt

import (
	"fmt"
	"strings"

	"desync/internal/netlist"
)

// Breakdown is the area accounting used by Tables 5.1/5.2. Following the
// paper's convention for the ARM (§5.3.1), the helper gates created by
// flip-flop substitution (scan muxes, set/reset gating) are attributed to
// sequential logic, so the substitution overhead lands in the sequential
// row.
type Breakdown struct {
	Nets     int
	Cells    int
	CellArea float64
	CombArea float64
	SeqArea  float64
}

// BreakdownOf computes the accounting over a flat module.
func BreakdownOf(m *netlist.Module) Breakdown {
	b := Breakdown{Nets: len(m.Nets)}
	for _, in := range m.Insts {
		if in.Cell == nil {
			continue
		}
		b.Cells++
		b.CellArea += in.Cell.Area
		seq := in.Cell.IsSequential() || in.Origin == "ffsub"
		if seq {
			b.SeqArea += in.Cell.Area
		} else {
			b.CombArea += in.Cell.Area
		}
	}
	return b
}

// AreaRow is one comparison line of an area table.
type AreaRow struct {
	Label    string
	Sync     float64
	Desync   float64
	Overhead float64 // percent
}

func row(label string, s, d float64) AreaRow {
	ov := 0.0
	if s != 0 {
		ov = (d - s) / s * 100
	}
	return AreaRow{label, s, d, ov}
}

// AreaTable reproduces the layout of Tables 5.1 and 5.2.
type AreaTable struct {
	Design        string
	PostSynthesis []AreaRow
	PostLayout    []AreaRow
}

// buildAreaTable assembles the table from the flow snapshots.
func buildAreaTable(design string, ss, ds Breakdown, sl, dl layoutReport) *AreaTable {
	t := &AreaTable{Design: design}
	t.PostSynthesis = []AreaRow{
		row("# nets", float64(ss.Nets), float64(ds.Nets)),
		row("# cells", float64(ss.Cells), float64(ds.Cells)),
		row("cell area (um2)", ss.CellArea, ds.CellArea),
		row("combinational logic (um2)", ss.CombArea, ds.CombArea),
		row("sequential logic (um2)", ss.SeqArea, ds.SeqArea),
	}
	t.PostLayout = []AreaRow{
		row("# nets", float64(sl.nets), float64(dl.nets)),
		row("# cells", float64(sl.cells), float64(dl.cells)),
		row("standard cell area (um2)", sl.stdArea, dl.stdArea),
		row("core size (um2)", sl.coreArea, dl.coreArea),
		row("core utilization (%)", sl.util, dl.util),
	}
	return t
}

type layoutReport struct {
	nets, cells       int
	stdArea, coreArea float64
	util              float64
}

// Table51 runs the full DLX experiment and returns the area table of §5.2.1.
func Table51() (*AreaTable, *DLXFlow, error) {
	f, err := RunDLXFlow(FlowConfig{Layout: true})
	if err != nil {
		return nil, nil, err
	}
	sl := layoutReport{f.SyncLayout.Report.Nets, f.SyncLayout.Report.Cells,
		f.SyncLayout.Report.StdCellArea, f.SyncLayout.Report.CoreArea, f.SyncLayout.Report.Utilization}
	dl := layoutReport{f.DesyncLayout.Report.Nets, f.DesyncLayout.Report.Cells,
		f.DesyncLayout.Report.StdCellArea, f.DesyncLayout.Report.CoreArea, f.DesyncLayout.Report.Utilization}
	return buildAreaTable("DLX vs DDLX", f.SyncSynth, f.DesyncSynth, sl, dl), f, nil
}

// Table52 runs the ARM experiment and returns the area table of §5.3.1.
func Table52() (*AreaTable, *ARMFlow, error) {
	f, err := RunARMFlow(true)
	if err != nil {
		return nil, nil, err
	}
	sl := layoutReport{f.SyncLayout.Report.Nets, f.SyncLayout.Report.Cells,
		f.SyncLayout.Report.StdCellArea, f.SyncLayout.Report.CoreArea, f.SyncLayout.Report.Utilization}
	dl := layoutReport{f.DesyncLayout.Report.Nets, f.DesyncLayout.Report.Cells,
		f.DesyncLayout.Report.StdCellArea, f.DesyncLayout.Report.CoreArea, f.DesyncLayout.Report.Utilization}
	return buildAreaTable("ARM vs DARM", f.SyncSynth, f.DesyncSynth, sl, dl), f, nil
}

// Render prints the table in the paper's layout.
func (t *AreaTable) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Area results: %s\n", t.Design)
	section := func(name string, rows []AreaRow) {
		fmt.Fprintf(&sb, "%s\n", name)
		fmt.Fprintf(&sb, "  %-28s %14s %14s %10s\n", "property", "synchronous", "desync", "% overhead")
		for _, r := range rows {
			fmt.Fprintf(&sb, "  %-28s %14.2f %14.2f %10.2f\n", r.Label, r.Sync, r.Desync, r.Overhead)
		}
	}
	section("Post Synthesis", t.PostSynthesis)
	section("Post Layout", t.PostLayout)
	return sb.String()
}

// Find returns the named row from a section.
func Find(rows []AreaRow, label string) (AreaRow, bool) {
	for _, r := range rows {
		if r.Label == label {
			return r, true
		}
	}
	return AreaRow{}, false
}
