// Package equiv is the formal verification engine of the flow: it compiles
// the inserted controller network back out of the desynchronized netlist
// into an explicit token-marking model — the speed-independent state graph
// of the controller gates (latch-enable gC, request gC, completion AND,
// helper C-elements), with C-Muller rendezvous trees collapsed to atomic
// joins and matched delay elements modelled as lowest-priority channel
// arrivals (fundamental mode) — and explores every reachable marking to
// prove three properties of the control network:
//
//   - deadlock-freedom: every reachable marking enables a transition;
//   - safety: no latch overwrite — a master enable may only reopen once its
//     slave has captured, a slave only once every consumer has, and every
//     capture latches exactly the generation the synchronous schedule
//     assigns to it;
//   - flow equivalence: the per-latch projection of captures follows the
//     synchronous schedule (the characterization of Paykin et al.,
//     arXiv:2004.10655), tracked with bounded per-region generation
//     counters.
//
// The model is extracted from pin connectivity, not from net names, so the
// known-bad fixtures (rewired acks, swapped reset phases, degenerate
// C-trees) are modelled faithfully and their failures are found as concrete
// counterexample traces. It complements internal/faults (dynamic campaigns)
// and internal/lint (structural rules) with exhaustive state-space proofs,
// and cross-validates the model against randomized internal/sim traces.
package equiv

import (
	"fmt"
	"strings"

	"desync/internal/cdet"
	"desync/internal/ctrlnet"
	"desync/internal/lint"
	"desync/internal/netlist"
)

// sigKind classifies a model signal.
type sigKind uint8

const (
	kindG       sigKind = iota // latch-enable gC output (CGMX1/CGSX1)
	kindRO                     // request-out gC output (CROX1)
	kindB                      // opened-since-handshake bit (CBX1)
	kindAI                     // acknowledge AND (ANDN3X1), combinational
	kindJoin                   // collapsed C-Muller rendezvous tree
	kindDelay                  // matched delay element output (channel arrival)
	kindEnvSrc                 // environment request producer (input port)
	kindEnvSink                // environment acknowledge consumer (input port)
)

func (k sigKind) String() string {
	switch k {
	case kindG:
		return "g"
	case kindRO:
		return "ro"
	case kindB:
		return "b"
	case kindAI:
		return "ai"
	case kindJoin:
		return "join"
	case kindDelay:
		return "delay"
	case kindEnvSrc:
		return "env-req"
	case kindEnvSink:
		return "env-ack"
	}
	return "?"
}

// operand references a model signal, or a constant when sig < 0. Stuck
// operands model undriven or unrecognized sources: they never transition.
type operand struct {
	sig   int
	stuck bool // constant value when sig < 0
}

// signal is one state-holding node of the model, addressed by the design
// net it corresponds to (so traces, sim monitors and replay all speak net
// names).
type signal struct {
	name    string
	kind    sigKind
	region  int  // owning region; -1 for free-standing joins
	master  bool // master-side controller gate
	init    bool // value after reset release
	a, b, c operand
	terms   []operand // kindJoin rendezvous inputs
}

// genRef points one generation source (a master-capture input) or one
// consumer (of a slave's output) at its producing signal.
type genRef struct {
	kind   genKind
	region int // pred/succ region for genSlave/genMaster/genCons
	sig    int // env signal index for genEnv/genEnvSink
}

type genKind uint8

const (
	genSlave   genKind = iota // pred region's slave output (the normal case)
	genMaster                 // pred region's master output (unusual wiring)
	genEnv                    // environment input channel
	genCons                   // consuming region's master (consumer list)
	genEnvSink                // environment consumer (consumer list)
)

// Model is the extracted token-marking model of one desynchronized module.
type Model struct {
	Design  string
	Regions []int

	sigs  []signal
	sigOf map[string]int // net name -> signal index

	// staticSigs caches the StaticSignals export (computed on demand; the
	// model is immutable after extraction).
	staticSigs []StaticSignal

	// Per-region controller gate signal indexes (-1 when the gate is
	// missing from the netlist; operands referencing it become stuck).
	mg, sg, mro, sro, mb, sb, mai, sai map[int]int

	// Counter layout: for each region (sorted) mGen then sGen, then one
	// counter per environment signal in creation order.
	nCtr   int
	mCtr   map[int]int
	sCtr   map[int]int
	envCtr map[int]int // env signal index -> counter index

	preds     map[int][]genRef // master-capture generation sources
	consumers map[int][]genRef // who must consume a slave's datum

	// Findings collects extraction-level diagnostics (rule EQ-MODEL):
	// unmodelled drivers, stuck sources, unusual channel wiring.
	Findings []lint.Finding
}

// SignalNames returns the design net names of all model signals, visible
// ones (latch enables and environment channels) first.
func (m *Model) SignalNames() (visible, hidden []string) {
	for i := range m.sigs {
		if m.visible(i) {
			visible = append(visible, m.sigs[i].name)
		} else {
			hidden = append(hidden, m.sigs[i].name)
		}
	}
	return visible, hidden
}

// visible reports whether a signal's transitions are property-relevant:
// latch enables fire captures and reopens, environment channels advance the
// input/output schedules. Everything else is internal handshake plumbing.
func (m *Model) visible(i int) bool {
	switch m.sigs[i].kind {
	case kindG, kindEnvSrc, kindEnvSink:
		return true
	}
	return false
}

func (m *Model) addFinding(sev lint.Severity, net, msg string) {
	m.Findings = append(m.Findings, lint.Finding{
		Rule: RuleModel, Severity: sev, Module: m.Design, Net: net, Msg: msg,
	})
}

// extractor carries the working state of FromModule.
type extractor struct {
	m   *Model
	mod *netlist.Module
	net map[*netlist.Net]int // resolved net -> signal index
}

// FromModule extracts the controller-network model from a desynchronized
// module, deriving (or reusing, via the ctrlnet memo) the control-network
// IR first. Callers that already hold the IR use FromNetwork directly.
func FromModule(mod *netlist.Module) (*Model, error) {
	return FromNetwork(mod, ctrlnet.Derive(mod))
}

// FromNetwork extracts the controller-network model on top of an
// already-derived control-network IR. It fails when the module has no
// controller regions or uses completion detection (whose request timing
// lives in the dual-rail datapath, outside this model — see DESIGN.md §10).
//
// The IR supplies the region list and the controller gate instances; every
// operand is still resolved from pin connectivity, not from net names, so
// the known-bad fixtures (rewired acks, swapped reset phases, degenerate
// C-trees) are modelled faithfully as built.
func FromNetwork(mod *netlist.Module, cn *ctrlnet.Network) (*Model, error) {
	if cdet.Used(mod) {
		return nil, fmt.Errorf("equiv: %s uses dual-rail completion detection; the marking model covers matched-delay controllers only", mod.Name)
	}
	m := &Model{
		Design: mod.Name,
		sigOf:  map[string]int{},
		mg:     map[int]int{}, sg: map[int]int{},
		mro: map[int]int{}, sro: map[int]int{},
		mb: map[int]int{}, sb: map[int]int{},
		mai: map[int]int{}, sai: map[int]int{},
		mCtr: map[int]int{}, sCtr: map[int]int{}, envCtr: map[int]int{},
		preds: map[int][]genRef{}, consumers: map[int][]genRef{},
	}
	x := &extractor{m: m, mod: mod, net: map[*netlist.Net]int{}}

	// Pass 1: create a signal for every controller gate output that exists.
	// The reset phase is read from the actual cell (CGMX1 resets
	// transparent, CGSX1 opaque), so a swapped-phase netlist is modelled as
	// built, not as intended.
	m.Regions = append(m.Regions, cn.Regions...)
	if len(m.Regions) == 0 {
		return nil, fmt.Errorf("equiv: %s has no latch controllers (not a desynchronized design)", mod.Name)
	}
	for _, g := range m.Regions {
		for _, master := range []bool{true, false} {
			gs := cn.Controllers[g].Master
			if !master {
				gs = cn.Controllers[g].Slave
			}
			x.gateSignal(gs.G, ctrlnet.CtrlGate(g, master, ctrlnet.GateG), "Q", kindG, g, master, gs.G)
			x.gateSignal(gs.RO, ctrlnet.CtrlGate(g, master, ctrlnet.GateRO), "Q", kindRO, g, master, gs.G)
			x.gateSignal(gs.B, ctrlnet.CtrlGate(g, master, ctrlnet.GateB), "Q", kindB, g, master, gs.G)
			x.gateSignal(gs.AI, ctrlnet.CtrlGate(g, master, ctrlnet.GateAI), "Z", kindAI, g, master, gs.G)
		}
	}

	// Pass 2: resolve every gate's input pins into operands, walking
	// through delay elements (timing, not logic) and collapsing C-trees
	// into atomic joins. Initial values follow from the reset network:
	// requests, acknowledges and joins all reset low.
	for _, g := range m.Regions {
		x.wireController(g, true, cn.Controllers[g].Master)
		x.wireController(g, false, cn.Controllers[g].Slave)
	}

	// Pass 3: derive the generation topology — which productions feed each
	// master capture, and who must consume each slave's output — from the
	// resolved request and acknowledge operands.
	for _, g := range m.Regions {
		if i := m.mg[g]; i >= 0 {
			m.preds[g] = x.expandGen(m.sigs[i].b, 0)
		}
		if i := m.sg[g]; i >= 0 {
			m.consumers[g] = x.expandCons(m.sigs[i].a, 0)
		}
	}
	m.layoutCounters()
	return m, nil
}

// gateSignal registers the output net of one controller gate as a model
// signal; a missing gate (or one with a dangling output) is recorded so
// later operand resolution falls back to a stuck value with a finding.
// gGate is the same controller half's latch-enable gate, whose cell decides
// the reset phase.
func (x *extractor) gateSignal(in *netlist.Inst, name, outPin string, kind sigKind, region int, master bool, gGate *netlist.Inst) {
	idxMap := x.m.gateIndex(kind, master)
	if in == nil || in.Conn(outPin) == nil {
		idxMap[region] = -1
		x.m.addFinding(lint.Warning, "", fmt.Sprintf("controller gate %s missing; its output is modelled stuck low", name))
		return
	}
	n := in.Conn(outPin)
	init := false
	if kind == kindG || kind == kindB {
		// CGMX1 resets transparent (high); CGSX1 opaque. The b bit has no
		// reset pin and settles to its g's reset value. Reading the cell
		// here (rather than trusting the M/S prefix) is what makes the
		// swapped-phase fixture observable.
		if gGate != nil && gGate.Cell != nil {
			init = gGate.Cell.Name == "CGMX1"
		}
	}
	s := signal{name: n.Name, kind: kind, region: region, master: master, init: init}
	x.m.sigs = append(x.m.sigs, s)
	idx := len(x.m.sigs) - 1
	idxMap[region] = idx
	x.net[n] = idx
	x.m.sigOf[n.Name] = idx
}

// gateIndex returns the per-region index map for one controller gate kind.
func (m *Model) gateIndex(kind sigKind, master bool) map[int]int {
	switch kind {
	case kindG:
		if master {
			return m.mg
		}
		return m.sg
	case kindRO:
		if master {
			return m.mro
		}
		return m.sro
	case kindB:
		if master {
			return m.mb
		}
		return m.sb
	default:
		if master {
			return m.mai
		}
		return m.sai
	}
}

// wireController resolves the input operands of the four gates of one
// controller half from their pin connections.
func (x *extractor) wireController(g int, master bool, gs ctrlnet.Gates) {
	m := x.m
	get := func(in *netlist.Inst, pin string) operand {
		if in == nil {
			return operand{sig: -1}
		}
		return x.resolve(in.Conn(pin), g, master, 0)
	}
	set := func(idx int, a, b, c operand) {
		if idx < 0 {
			return
		}
		m.sigs[idx].a, m.sigs[idx].b, m.sigs[idx].c = a, b, c
	}
	// Pin roles per handshake.AddController: g{A:ao B:ri}, ro{A:g B:ao},
	// b{A:g B:ri}, ai{A:ri B:g C:b}.
	set(m.gateIndex(kindG, master)[g], get(gs.G, "A"), get(gs.G, "B"), operand{sig: -1})
	set(m.gateIndex(kindRO, master)[g], get(gs.RO, "A"), get(gs.RO, "B"), operand{sig: -1})
	set(m.gateIndex(kindB, master)[g], get(gs.B, "A"), get(gs.B, "B"), operand{sig: -1})
	set(m.gateIndex(kindAI, master)[g], get(gs.AI, "A"), get(gs.AI, "B"), get(gs.AI, "C"))
}

const maxResolveDepth = 64

// resolve maps a design net onto a model operand: an existing signal, a
// lazily created join, delay-arrival or environment signal, or a stuck
// constant (with a finding). region/master locate the consuming controller
// so environment channels know which ai/ro to watch.
func (x *extractor) resolve(n *netlist.Net, region int, master bool, depth int) operand {
	m := x.m
	if n == nil {
		m.addFinding(lint.Warning, "", fmt.Sprintf("region %d: unconnected controller pin modelled stuck low", region))
		return operand{sig: -1}
	}
	if idx, ok := x.net[n]; ok {
		return operand{sig: idx}
	}
	if depth > maxResolveDepth {
		m.addFinding(lint.Warning, n.Name, "resolution depth exceeded; source modelled stuck low")
		return operand{sig: -1}
	}
	drv := n.Driver
	if drv.Inst == nil {
		if drv.Pin != "" {
			return x.envSignal(n, region, master)
		}
		m.addFinding(lint.Warning, n.Name, fmt.Sprintf("region %d: undriven net modelled stuck low", region))
		return operand{sig: -1}
	}
	in := drv.Inst
	if in.Cell == nil {
		m.addFinding(lint.Warning, n.Name, "submodule driver cannot be modelled; stuck low")
		return operand{sig: -1}
	}
	switch {
	case in.Cell.Kind == netlist.KindTie:
		v := false
		for out, fn := range in.Cell.Functions {
			if in.Conn(out) == n {
				v = fn.Eval(nil).Bool()
			}
		}
		m.addFinding(lint.Warning, n.Name, fmt.Sprintf("region %d: tied-off source modelled stuck %v", region, v))
		return operand{sig: -1, stuck: v}
	case ctrlnet.IsDelayInstName(in.Name):
		return x.delaySignal(n, region, master, depth)
	case in.Cell.Kind == netlist.KindCElem:
		return x.joinSignal(n, region, master, depth)
	}
	m.addFinding(lint.Warning, n.Name,
		fmt.Sprintf("region %d: unmodelled driver %s (%s); source stuck low", region, in.Name, in.Cell.Name))
	return operand{sig: -1}
}

// delaySignal models the output of a matched delay-element chain as an
// explicit channel-arrival signal that follows its logical source. Arrivals
// are the model's timing discipline: the explorer fires them only from
// control-stable markings (no controller gate excited), which is the
// fundamental-mode assumption every matched-delay desynchronization rests
// on — the sized chain covers the datapath's settling time, and the
// controller cascade between two arrivals is a handful of gate delays, far
// inside that budget. Without this, pure speed-independent interleaving
// reaches orderings the delay elements exclude by construction (a request
// round trip overtaking a one-gate local settling), which show up as
// phantom deadlocks and overwrites.
func (x *extractor) delaySignal(n *netlist.Net, region int, master bool, depth int) operand {
	m := x.m
	s := signal{name: n.Name, kind: kindDelay, region: region, master: master}
	m.sigs = append(m.sigs, s)
	idx := len(m.sigs) - 1
	x.net[n] = idx
	m.sigOf[n.Name] = idx
	// Walk the chain back to the net feeding its first stage, then resolve
	// that as the arrival's source.
	src := n
	for i := 0; i < maxResolveDepth; i++ {
		in := src.Driver.Inst
		if in == nil || in.Cell == nil || !ctrlnet.IsDelayInstName(in.Name) {
			break
		}
		src = delayInput(in)
		if src == nil {
			break
		}
	}
	m.sigs[idx].a = x.resolve(src, region, master, depth+1)
	return operand{sig: idx}
}

// delayInput steps one gate backwards through a delay-element chain: AND
// stages carry the bypassed input on pin B, buffers and muxes forward pin A
// (the shortest tap — tap choice shifts timing, not logic).
func delayInput(in *netlist.Inst) *netlist.Net {
	if strings.HasPrefix(in.Cell.Name, "AND") && in.Conn("B") != nil {
		return in.Conn("B")
	}
	if n := in.Conn("A"); n != nil {
		return n
	}
	for _, p := range in.Cell.Inputs() {
		if in.Conn(p) != nil {
			return in.Conn(p)
		}
	}
	return nil
}

// envSignal models an input-port-driven channel as an eager environment:
// a request source raises the moment its acknowledge clears (watching the
// controller's ai), an acknowledge sink mirrors the controller's ro. Each
// carries a schedule counter so input consumption and output production
// stay in lockstep with the latch generations.
func (x *extractor) envSignal(n *netlist.Net, region int, master bool) operand {
	m := x.m
	kind := kindEnvSink
	watch := m.gateIndex(kindRO, master)[region]
	if onRequestPath(n, region) {
		kind = kindEnvSrc
		watch = m.gateIndex(kindAI, master)[region]
	}
	s := signal{name: n.Name, kind: kind, region: region, master: master, a: operand{sig: watch}}
	if watch < 0 {
		s.a = operand{sig: -1}
	}
	m.sigs = append(m.sigs, s)
	idx := len(m.sigs) - 1
	x.net[n] = idx
	m.sigOf[n.Name] = idx
	return operand{sig: idx}
}

// onRequestPath classifies an environment port: request inputs follow the
// flow's G<id>_env_ri naming; anything else acting as a port-driven channel
// is an acknowledge. The suffix fallback inside IsEnvRequestNet keeps
// mutated netlists modellable.
func onRequestPath(n *netlist.Net, region int) bool {
	return ctrlnet.IsEnvRequestNet(n.Name, region)
}

// joinSignal collapses the maximal C-element tree driving n into one atomic
// rendezvous signal over the tree's leaf operands — the model's symmetry
// reduction: internal C-tree nets never appear as state bits, so tree shape
// (which the flow balances for timing) does not blow up the marking space.
func (x *extractor) joinSignal(n *netlist.Net, region int, master bool, depth int) operand {
	m := x.m
	leaves := celemLeaves(n)
	s := signal{name: n.Name, kind: kindJoin, region: region, master: master}
	m.sigs = append(m.sigs, s)
	idx := len(m.sigs) - 1
	x.net[n] = idx
	m.sigOf[n.Name] = idx
	terms := make([]operand, 0, len(leaves))
	for _, leaf := range leaves {
		terms = append(terms, x.resolve(leaf, region, master, depth+1))
	}
	m.sigs[idx].terms = terms
	return operand{sig: idx}
}

// celemLeaves walks the connected C-element component feeding root and
// returns its input nets (those not produced inside the component).
func celemLeaves(root *netlist.Net) []*netlist.Net {
	var leaves []*netlist.Net
	seen := map[*netlist.Net]bool{}
	var walk func(n *netlist.Net, depth int)
	walk = func(n *netlist.Net, depth int) {
		if n == nil || seen[n] || depth > maxResolveDepth {
			return
		}
		seen[n] = true
		in := n.Driver.Inst
		if in == nil || in.Cell == nil || in.Cell.Kind != netlist.KindCElem {
			leaves = append(leaves, n)
			return
		}
		for _, p := range in.Cell.Inputs() {
			walk(in.Conn(p), depth+1)
		}
	}
	in := root.Driver.Inst
	if in != nil && in.Cell != nil {
		for _, p := range in.Cell.Inputs() {
			walk(in.Conn(p), 0)
		}
	}
	return leaves
}

// expandGen flattens a master's request operand into generation sources:
// joins expand to their leaves, slave request-outs are the normal pred
// channels, environment sources carry their own schedule. Anything else is
// reported and excluded from generation tracking (the control excitation
// still uses it faithfully).
func (x *extractor) expandGen(op operand, depth int) []genRef {
	m := x.m
	if op.sig < 0 || depth > maxResolveDepth {
		return nil
	}
	s := &m.sigs[op.sig]
	switch s.kind {
	case kindRO:
		if s.master {
			m.addFinding(lint.Warning, s.name,
				fmt.Sprintf("request sourced from region %d master (expected a slave request-out)", s.region))
			return []genRef{{kind: genMaster, region: s.region}}
		}
		return []genRef{{kind: genSlave, region: s.region}}
	case kindEnvSrc:
		return []genRef{{kind: genEnv, sig: op.sig}}
	case kindDelay:
		return x.expandGen(s.a, depth+1)
	case kindJoin:
		var out []genRef
		for _, t := range s.terms {
			out = append(out, x.expandGen(t, depth+1)...)
		}
		return out
	}
	m.addFinding(lint.Warning, s.name,
		fmt.Sprintf("request sourced from %s signal; excluded from generation tracking", s.kind))
	return nil
}

// expandCons flattens a slave's acknowledge operand into the consumers that
// must capture its output before it may reopen.
func (x *extractor) expandCons(op operand, depth int) []genRef {
	m := x.m
	if op.sig < 0 || depth > maxResolveDepth {
		return nil
	}
	s := &m.sigs[op.sig]
	switch s.kind {
	case kindAI:
		if !s.master {
			m.addFinding(lint.Warning, s.name,
				fmt.Sprintf("acknowledge sourced from region %d slave (expected a master acknowledge)", s.region))
			return nil
		}
		return []genRef{{kind: genCons, region: s.region}}
	case kindEnvSink:
		return []genRef{{kind: genEnvSink, sig: op.sig}}
	case kindDelay:
		return x.expandCons(s.a, depth+1)
	case kindJoin:
		var out []genRef
		for _, t := range s.terms {
			out = append(out, x.expandCons(t, depth+1)...)
		}
		return out
	}
	m.addFinding(lint.Warning, s.name,
		fmt.Sprintf("acknowledge sourced from %s signal; excluded from consumption tracking", s.kind))
	return nil
}

// layoutCounters assigns the per-region and per-environment generation
// counters their slots in the state vector.
func (m *Model) layoutCounters() {
	n := 0
	for _, g := range m.Regions {
		m.mCtr[g] = n
		m.sCtr[g] = n + 1
		n += 2
	}
	for i := range m.sigs {
		switch m.sigs[i].kind {
		case kindEnvSrc, kindEnvSink:
			m.envCtr[i] = n
			n++
		}
	}
	m.nCtr = n
}
