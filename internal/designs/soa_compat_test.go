package designs

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"desync/internal/stdcells"
	"desync/internal/verilog"
)

// TestSoACompatDigests pins the canonical digests of the three fixed case
// studies to the values the pre-SoA (map-based) netlist representation
// produced. The index/slab storage refactor promised byte-identical
// ContentHash streams and Verilog exports; these constants are the captured
// pre-refactor values, so any representation change that leaks into the
// canonical forms — sink ordering, %g rendering, pin iteration order —
// fails here rather than silently invalidating flow-result caches.
func TestSoACompatDigests(t *testing.T) {
	dlx, err := BuildDLX(stdcells.New(stdcells.HighSpeed), TestProgram())
	if err != nil {
		t.Fatal(err)
	}
	arm, err := BuildARMLike(stdcells.New(stdcells.LowLeakage), 42)
	if err != nil {
		t.Fatal(err)
	}
	fir, err := BuildFIR(stdcells.New(stdcells.HighSpeed))
	if err != nil {
		t.Fatal(err)
	}
	vh := func(s string) string {
		h := sha256.Sum256([]byte(s))
		return hex.EncodeToString(h[:])
	}
	for _, c := range []struct {
		name                             string
		design, top, verilog             string
		wantDesign, wantTop, wantVerilog string
	}{
		{
			name:        "dlx",
			design:      dlx.ContentHash(),
			top:         dlx.Top.ContentHash(),
			verilog:     vh(verilog.Write(dlx)),
			wantDesign:  "c1f506989ee4407af56b5b4478179cabd6bc9e0e982720a7a9a0dd3f6a788aed",
			wantTop:     "1c0a96f1e8ab455c8fabaef415efdd8d451ef1ae7296afcc2c7490ec55130e6f",
			wantVerilog: "29f2bc93c1fa72e4e0bcccdd2a24d513651cd320254e6c26f4dabf443f7decab",
		},
		{
			name:        "arm",
			design:      arm.ContentHash(),
			top:         arm.Top.ContentHash(),
			verilog:     vh(verilog.Write(arm)),
			wantDesign:  "7203f08ab1adf4a34a727ae0d3e815c8d881b79db492702bb8addab038be3d8c",
			wantTop:     "87736cd46db8fb234bac1db09b3f0dfba06af737badf10b7f83963b11d9f310a",
			wantVerilog: "274d83d590675dcfee412e7d3b1906221c0ac7a9bd9a585b284162150278440b",
		},
		{
			name:        "fir",
			design:      fir.ContentHash(),
			top:         fir.Top.ContentHash(),
			verilog:     vh(verilog.Write(fir)),
			wantDesign:  "386471639747595836c0f94c7695d9abe47b7d23e49d5c5936f2d5554a347f86",
			wantTop:     "ed11411e9071cc165813a2176e1c6808950fd16d003af77ed7a213d44164e4e1",
			wantVerilog: "e7d42db3234f1fa169c1445a02223584fe27718d0103279d1c3437779bd58a1b",
		},
	} {
		if c.design != c.wantDesign {
			t.Errorf("%s: design ContentHash = %s, want pre-refactor %s", c.name, c.design, c.wantDesign)
		}
		if c.top != c.wantTop {
			t.Errorf("%s: top ContentHash = %s, want pre-refactor %s", c.name, c.top, c.wantTop)
		}
		if c.verilog != c.wantVerilog {
			t.Errorf("%s: verilog export digest = %s, want pre-refactor %s", c.name, c.verilog, c.wantVerilog)
		}
	}
}
